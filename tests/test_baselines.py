"""Tests for the three Section 3 baseline alternatives."""

import collections
import math

import pytest

from conftest import TEST_BLOCK, small_disk_params
from repro.baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    SequentialAppender,
    VirtualMemoryReservoir,
)
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record, RecordSchema


def make(cls, capacity=1000, buffer_capacity=50, record_size=40,
         pool_blocks=4, retain_records=True, admission="uniform", seed=0):
    config = DiskReservoirConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=record_size, pool_blocks=pool_blocks,
        retain_records=retain_records, admission=admission,
    )
    blocks = cls.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return cls(device, config, seed=seed)


def feed(reservoir, n, start=0):
    for i in range(start, start + n):
        reservoir.offer(Record(key=i, value=float(i)))


ALL = [VirtualMemoryReservoir, ScanReservoir, LocalOverwriteReservoir]


class TestConfigValidation:
    def test_buffer_vs_capacity(self):
        with pytest.raises(ValueError):
            DiskReservoirConfig(capacity=100, buffer_capacity=100)

    def test_pool_minimum(self):
        with pytest.raises(ValueError):
            DiskReservoirConfig(capacity=100, buffer_capacity=10,
                                pool_blocks=0)


class TestSequentialAppender:
    def test_whole_blocks_charged_as_written(self):
        device = SimulatedBlockDevice(100, small_disk_params())
        appender = SequentialAppender(device, RecordSchema(40))
        per_block = TEST_BLOCK // 40
        appender.append(per_block * 3)
        assert device.model.stats.blocks_written == 3

    def test_partial_block_held_until_finish(self):
        device = SimulatedBlockDevice(100, small_disk_params())
        appender = SequentialAppender(device, RecordSchema(40))
        appender.append(5)
        assert device.model.stats.blocks_written == 0
        appender.finish()
        assert device.model.stats.blocks_written == 1

    def test_append_is_sequential(self):
        device = SimulatedBlockDevice(1000, small_disk_params())
        appender = SequentialAppender(device, RecordSchema(40))
        per_block = TEST_BLOCK // 40
        for _ in range(20):
            appender.append(per_block * 10)
        assert device.model.stats.seeks == 1

    def test_negative_rejected(self):
        device = SimulatedBlockDevice(10, small_disk_params())
        appender = SequentialAppender(device, RecordSchema(40))
        with pytest.raises(ValueError):
            appender.append(-1)


@pytest.mark.parametrize("cls", ALL)
class TestCommonBehaviour:
    def test_sample_size_and_uniqueness(self, cls):
        r = make(cls)
        feed(r, 4000)
        sample = r.sample()
        keys = [x.key for x in sample]
        assert len(keys) == 1000
        assert len(set(keys)) == 1000

    def test_fill_phase_is_sequential(self, cls):
        r = make(cls)
        feed(r, 1000)  # exactly the fill
        stats = r.device.model.stats
        assert stats.seeks <= 3
        assert stats.blocks_read == 0

    def test_fill_holds_everything(self, cls):
        r = make(cls)
        feed(r, 700)
        assert sorted(x.key for x in r.sample()) == list(range(700))

    def test_count_only_mode(self, cls):
        r = make(cls, retain_records=False, admission="always")
        r.ingest(5000)
        assert r.samples_added == 5000
        with pytest.raises(TypeError):
            r.sample()

    def test_uniformity(self, cls):
        trials, capacity, stream = 200, 100, 500
        counts = collections.Counter()
        for t in range(trials):
            r = make(cls, capacity=capacity, buffer_capacity=20,
                     seed=7000 + t)
            feed(r, stream)
            counts.update(x.key for x in r.sample())
        expected = trials * capacity / stream
        sigma = math.sqrt(trials * (capacity / stream)
                          * (1 - capacity / stream))
        for key in range(stream):
            assert abs(counts[key] - expected) < 5 * sigma, (cls, key)


class TestVirtualMemory:
    def test_two_random_ios_per_record(self):
        """Section 3.2's arithmetic: ~1 read + ~1 write-back each."""
        r = make(VirtualMemoryReservoir, capacity=100_000,
                 buffer_capacity=100, record_size=40, pool_blocks=4,
                 retain_records=False, admission="always")
        r.ingest(100_000)  # fill
        seeks_before = r.device.model.stats.seeks
        r.ingest(2000)
        per_record = (r.device.model.stats.seeks - seeks_before) / 2000
        assert 1.5 <= per_record <= 2.1

    def test_pool_absorbs_repeat_hits(self):
        # Tiny reservoir entirely inside the pool: no steady-state I/O.
        config = DiskReservoirConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, pool_blocks=64,
                                     admission="always")
        blocks = VirtualMemoryReservoir.required_blocks(config, TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params())
        r = VirtualMemoryReservoir(device, config, seed=0)
        r.ingest(500)
        seeks_before = device.model.stats.seeks
        r.ingest(5000)
        # All blocks fit in the pool: reads hit, nothing evicts.
        assert device.model.stats.seeks - seeks_before <= blocks + 1


class TestScan:
    def test_flush_rewrites_whole_file(self):
        r = make(ScanReservoir, capacity=10_000, buffer_capacity=100,
                 record_size=40, retain_records=False, admission="always")
        r.ingest(10_000)
        stats_before = r.device.model.stats.snapshot()
        r.ingest(100)  # exactly one flush
        stats = r.device.model.stats
        file_blocks = r._file_blocks
        assert stats.blocks_read - stats_before.blocks_read == file_blocks
        assert (stats.blocks_written
                - stats_before.blocks_written) == file_blocks

    def test_flushes_counted(self):
        r = make(ScanReservoir, admission="always")
        feed(r, 1000 + 250)
        assert r.flushes in (4, 5)  # in-buffer replacement slack


class TestLocalOverwrite:
    def test_cohorts_grow_then_saturate(self):
        r = make(LocalOverwriteReservoir, capacity=20_000,
                 buffer_capacity=400, retain_records=False,
                 admission="always")
        r.ingest(20_000)
        assert r.n_cohorts == 1
        r.ingest(100_000)
        mid = r.n_cohorts
        r.ingest(400_000)
        late = r.n_cohorts
        assert 1 < mid < late
        # Saturation near ln(B)/(1-alpha) = ln(400) * 50 ~ 300.
        assert late < 500

    def test_seeks_per_flush_grow_over_time(self):
        """The paper's degradation: each flush touches more cohorts."""
        r = make(LocalOverwriteReservoir, capacity=20_000,
                 buffer_capacity=400, retain_records=False,
                 admission="always")
        r.ingest(20_000)
        s0 = r.device.model.stats.seeks
        r.ingest(8000)   # 20 early flushes
        early = r.device.model.stats.seeks - s0
        r.ingest(200_000)
        s1 = r.device.model.stats.seeks
        r.ingest(8000)   # 20 late flushes
        late = r.device.model.stats.seeks - s1
        assert late > 3 * early

    def test_first_steady_flush_costs_one_seek(self):
        r = make(LocalOverwriteReservoir, capacity=2000,
                 buffer_capacity=100, retain_records=False,
                 admission="always")
        r.ingest(2000)
        seeks_before = r.device.model.stats.seeks
        r.ingest(100)
        assert r.device.model.stats.seeks - seeks_before <= 2

    def test_record_mode_cohort_bookkeeping(self):
        r = make(LocalOverwriteReservoir, capacity=500, buffer_capacity=50,
                 admission="always")
        feed(r, 2000)
        total = sum(c.live for c in r._cohorts)
        assert total == 500
        for cohort in r._cohorts:
            assert len(cohort.records) == cohort.live
