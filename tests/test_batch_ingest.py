"""Equivalence tests for the batch-ingestion pipeline.

The batch paths (``offer_many``, ``SampleBuffer.absorb_many``,
``gaps_z``, batched ``feed_stream``) draw their randomness from a numpy
generator while the scalar paths use ``random.Random``, so bit-exact
agreement is impossible; what *is* provable -- and asserted here with
fixed-seed chi-square / KS tests -- is distributional identity:

* admissions follow the same N/i law record by record;
* in-buffer replacement follows the same count/|R| law;
* gap draws follow Vitter's exact skip distribution, including across
  the internal block boundaries (a regression test for a subtle bug:
  redrawing a block's trailing *misses* would give those stream
  positions a second acceptance chance);
* the chunked admission counter matches the dense draw it replaced.

Where the two paths share no randomness at all -- flush cadence in
``admission="always"`` mode, where admitted == seen -- equality is
EXACT and asserted exactly (clock, flushes, I/O counters).
"""

from __future__ import annotations

import collections
import random

import numpy as np
import pytest
from scipy import stats as scipy_stats

from conftest import keyed_records, make_geometric_file, make_multi_file
from repro.core.buffer import SampleBuffer
from repro.reservoir import (
    StreamReservoir,
    VictimScratch,
    draw_victim_counts,
    draw_victim_counts_array,
)
from repro.sampling import feed_stream, gaps_z, skip_count_x

#: Significance floor for the chi-square / KS assertions.  Fixed seeds
#: make the tests deterministic, so this is a one-time check that the
#: realised draw is consistent with the claimed distribution, not a
#: flaky gate.
P_MIN = 0.01


def chi_square_p(observed: dict, expected: dict, *, min_expected=20.0):
    """Chi-square p-value over the categories with enough mass."""
    obs, exp = [], []
    for key, want in expected.items():
        if want >= min_expected:
            obs.append(observed.get(key, 0))
            exp.append(want)
    exp = np.asarray(exp, dtype=float)
    exp *= sum(obs) / exp.sum()
    return scipy_stats.chisquare(obs, exp).pvalue


class _CountingReservoir(StreamReservoir):
    """Minimal concrete structure: records admissions, nothing else."""

    name = "counting"

    def __init__(self, capacity, *, admission="uniform", seed=0):
        super().__init__(capacity, admission=admission, seed=seed)
        self.admitted_records = []

    def _admit(self, record):
        self.admitted_records.append(record)

    def _admit_count(self, n):
        self.admitted_records.extend([None] * n)


class TestOfferMany:
    def test_fill_phase_admits_everything(self):
        r = _CountingReservoir(100)
        assert r.offer_many(list(range(60))) == 60
        # The second batch straddles the fill boundary: positions
        # 61..100 are certain, 101..120 probabilistic.
        admitted = r.offer_many(list(range(60, 120)))
        assert 40 <= admitted <= 60
        assert r.stats().seen == 120
        assert r.admitted_records[:100] == list(range(100))

    def test_always_mode_admits_everything(self):
        r = _CountingReservoir(10, admission="always")
        assert r.offer_many(list(range(5000))) == 5000

    def test_empty_batch_is_noop(self):
        r = _CountingReservoir(10)
        assert r.offer_many([]) == 0
        assert r.stats().seen == 0

    def test_matches_scalar_admission_law(self):
        """Chi-square: P[record j admitted] = N/j on both paths."""
        trials, capacity, stream = 300, 40, 400
        batch_counts = collections.Counter()
        scalar_counts = collections.Counter()
        for t in range(trials):
            a = _CountingReservoir(capacity, seed=t)
            for start in range(0, stream, 64):
                a.offer_many(list(range(start, min(start + 64, stream))))
            batch_counts.update(a.admitted_records)
            b = _CountingReservoir(capacity, seed=t + 10 ** 6)
            for j in range(stream):
                b.offer(j)
            scalar_counts.update(b.admitted_records)
        expected = {j: trials * min(1.0, capacity / (j + 1))
                    for j in range(stream)}
        assert chi_square_p(batch_counts, expected) > P_MIN
        assert chi_square_p(scalar_counts, expected) > P_MIN

    def test_admitted_count_distribution_matches(self):
        """KS: total admissions per run agree between the paths."""
        trials, capacity, stream = 200, 30, 600
        batch, scalar = [], []
        for t in range(trials):
            a = _CountingReservoir(capacity, seed=t)
            a.offer_many(list(range(stream)))
            batch.append(len(a.admitted_records))
            b = _CountingReservoir(capacity, seed=t + 10 ** 6)
            for j in range(stream):
                b.offer(j)
            scalar.append(len(b.admitted_records))
        assert scipy_stats.ks_2samp(batch, scalar).pvalue > P_MIN


class TestAbsorbMany:
    def _final_keys(self, batched: bool, seed: int, reservoir_size=500,
                    capacity=40, stream=120):
        rng = random.Random(seed)
        buffer = SampleBuffer(capacity, rng)
        records = keyed_records(stream)
        if batched:
            consumed = buffer.absorb_many(records, reservoir_size)
        else:
            consumed = 0
            while consumed < stream and not buffer.is_full:
                buffer.add_admitted(records[consumed], reservoir_size)
                consumed += 1
        return [r.key for r in buffer], consumed

    def test_content_distribution_matches(self):
        trials = 400
        batch_counts = collections.Counter()
        scalar_counts = collections.Counter()
        per_trial = None
        for t in range(trials):
            keys, consumed = self._final_keys(True, seed=t)
            batch_counts.update(keys)
            per_trial = len(keys)
            keys, _ = self._final_keys(False, seed=t + 10 ** 6)
            scalar_counts.update(keys)
        # Both paths must fill the buffer exactly.
        assert per_trial == 40
        batch_keys = sorted(batch_counts.elements())
        scalar_keys = sorted(scalar_counts.elements())
        p = scipy_stats.ks_2samp(batch_keys, scalar_keys).pvalue
        assert p > P_MIN

    def test_consumed_matches_flush_boundary(self):
        """Both paths stop at the same is_full boundary law (KS)."""
        batch, scalar = [], []
        for t in range(300):
            _, consumed = self._final_keys(True, seed=t, reservoir_size=60,
                                           capacity=30, stream=200)
            batch.append(consumed)
            _, consumed = self._final_keys(False, seed=t + 10 ** 6,
                                           reservoir_size=60,
                                           capacity=30, stream=200)
            scalar.append(consumed)
        assert scipy_stats.ks_2samp(batch, scalar).pvalue > P_MIN

    def test_full_buffer_raises(self):
        buffer = SampleBuffer(4, random.Random(0), retain_records=False)
        buffer.append_count(4)
        with pytest.raises(ValueError):
            buffer.absorb_many([None] * 3, 100)

    def test_weighted_buffer_rejects_batch(self):
        buffer = SampleBuffer(8, random.Random(0))
        buffer.append(keyed_records(1)[0], weight=2.0)
        with pytest.raises(TypeError):
            buffer.absorb_many(keyed_records(3), 100)

    def test_extend_overfill_raises(self):
        buffer = SampleBuffer(4, random.Random(0))
        with pytest.raises(ValueError):
            buffer.extend(keyed_records(5))

    def test_retaining_extend_rejects_none(self):
        """extend must match append's None check in retaining mode."""
        buffer = SampleBuffer(4, random.Random(0))
        with pytest.raises(ValueError, match="needs the record"):
            buffer.extend([keyed_records(1)[0], None])

    def test_retaining_absorb_rejects_none(self):
        """absorb_many must match add_admitted's None check."""
        buffer = SampleBuffer(8, random.Random(0))
        with pytest.raises(ValueError, match="needs the record"):
            buffer.absorb_many(keyed_records(3) + [None], 100)


class TestGapsZ:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gaps_z(10, 5, 4, rng)  # reservoir not full
        with pytest.raises(ValueError):
            gaps_z(0, 5, 4, rng)
        with pytest.raises(ValueError):
            gaps_z(10, 10, -1, rng)
        assert gaps_z(10, 10, 0, rng).shape == (0,)

    def test_first_gap_matches_algorithm_x(self):
        """Chi-square against the *exact* skip law, KS between paths."""
        n, seen, trials = 25, 80, 4000
        np_rng = np.random.default_rng(3)
        py_rng = random.Random(3)
        batch = [int(gaps_z(n, seen, 1, np_rng)[0])
                 for _ in range(trials)]
        scalar = [skip_count_x(n, seen, py_rng) for _ in range(trials)]
        # Exact pmf: P[gap >= s] = prod_{j=1..s} (seen+j-n)/(seen+j).
        expected = {}
        survival = 1.0
        s = 0
        while survival * trials >= 1e-3:
            nxt = survival * (seen + s + 1 - n) / (seen + s + 1)
            expected[s] = trials * (survival - nxt)
            survival = nxt
            s += 1
        assert chi_square_p(collections.Counter(batch), expected) > P_MIN
        assert scipy_stats.ks_2samp(batch, scalar).pvalue > P_MIN

    def test_acceptance_positions_follow_n_over_j(self):
        """Every stream position is accepted with probability n/j.

        Regression for the block-boundary bug: the trailing misses of
        an internal block are decided, and redrawing them inflated the
        acceptance rate of positions just before each block boundary by
        >20 sigma.  This sweeps every position, so any boundary bias
        trips the per-position 5-sigma bound.
        """
        n, start, limit, trials = 50, 50, 500, 3000
        counts = np.zeros(limit + 1, dtype=np.int64)
        rng = np.random.default_rng(11)
        for _ in range(trials):
            seen = start
            while seen < limit:
                for g in gaps_z(n, seen, 64, rng).tolist():
                    pos = seen + g + 1
                    if pos > limit:
                        seen = limit
                        break
                    counts[pos] += 1
                    seen = pos
        for j in range(start + 1, limit + 1):
            p = n / j
            expected = trials * p
            sigma = (trials * p * (1 - p)) ** 0.5
            assert abs(counts[j] - expected) < 5 * sigma, j


class TestChunkedAdmissionCount:
    @staticmethod
    def _admissions(capacity, stream, seed):
        r = _CountingReservoir(capacity, seed=seed)
        r.ingest(stream)
        return r.stats().samples_added

    def test_chunking_matches_dense(self, monkeypatch):
        """Forcing tiny chunks leaves the admission-count law intact."""
        capacity, stream, trials = 50, 4000, 300
        dense = [self._admissions(capacity, stream, t)
                 for t in range(trials)]
        monkeypatch.setattr(_CountingReservoir, "_ADMISSION_CHUNK", 64)
        chunked = [self._admissions(capacity, stream, t + 10 ** 6)
                   for t in range(trials)]
        assert scipy_stats.ks_2samp(dense, chunked).pvalue > P_MIN

    def test_exact_during_fill(self):
        assert self._admissions(100, 100, seed=0) == 100

    def test_mean_matches_harmonic_sum(self, monkeypatch):
        monkeypatch.setattr(_CountingReservoir, "_ADMISSION_CHUNK", 128)
        capacity, stream, trials = 20, 2000, 400
        total = sum(self._admissions(capacity, stream, t)
                    for t in range(trials))
        mean = total / trials
        expected = capacity + sum(
            capacity / j for j in range(capacity + 1, stream + 1)
        )
        sigma_mean = (expected / trials) ** 0.5  # crude Poisson bound
        assert abs(mean - expected) < 6 * sigma_mean


class TestVictimDraws:
    def test_array_matches_list_distribution(self):
        """Both draws hit the analytic hypergeometric means."""
        lives = [300, 150, 75, 40, 10]
        count, trials = 60, 500
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(6)
        arr = np.asarray(lives, dtype=np.int64)
        sums_a = np.zeros(len(lives))
        sums_b = np.zeros(len(lives))
        for _ in range(trials):
            sums_a += draw_victim_counts_array(rng_a, arr, count)
            sums_b += np.asarray(draw_victim_counts(rng_b, lives, count))
        total = sum(lives)
        expected = {i: trials * count * share / total
                    for i, share in enumerate(lives)}
        assert chi_square_p(dict(enumerate(sums_a)), expected,
                            min_expected=1.0) > P_MIN
        assert chi_square_p(dict(enumerate(sums_b)), expected,
                            min_expected=1.0) > P_MIN

    def test_single_population_is_deterministic(self):
        rng = np.random.default_rng(0)
        arr = np.asarray([500], dtype=np.int64)
        assert draw_victim_counts_array(rng, arr, 17).tolist() == [17]

    def test_zero_count(self):
        rng = np.random.default_rng(0)
        arr = np.asarray([5, 5], dtype=np.int64)
        assert draw_victim_counts_array(rng, arr, 0).tolist() == [0, 0]

    def test_overdraw_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            draw_victim_counts_array(rng, np.asarray([3, 2]), 6)

    def test_scratch_reuses_buffer(self):
        scratch = VictimScratch()
        first = scratch.view(4)
        first[:] = 7
        again = scratch.view(3)
        assert again.base is first.base
        bigger = scratch.view(100)
        assert bigger.shape == (100,)


class TestProtectedFeederApi:
    def test_advance_skipped(self):
        r = _CountingReservoir(10)
        r._advance_skipped(7)
        assert r.stats().seen == 7
        with pytest.raises(ValueError):
            r._advance_skipped(-1)

    def test_accept_bypasses_admission(self):
        r = _CountingReservoir(2)
        r._advance_skipped(100)
        r._accept("x")
        assert r.stats().seen == 101
        assert r.stats().samples_added == 1
        assert r.admitted_records == ["x"]

    def test_accept_many(self):
        r = _CountingReservoir(2)
        r._accept_many(["a", "b", "c"])
        assert r.stats().samples_added == 3
        assert r.admitted_records == ["a", "b", "c"]
        r._accept_many([])
        assert r.stats().samples_added == 3


class TestClockEquivalence:
    """Flush cadence of offer vs offer_many in admission="always" mode.

    During *start-up* no randomness touches the cadence (every record
    joins the buffer; flush targets are the deterministic Figure 3
    schedule), so the simulated clock and all I/O counters must agree
    EXACTLY.  In steady state the in-buffer replacement draws come from
    different RNG streams (``random.Random`` vs numpy), so the flush
    count drifts by the replacement noise -- a few per thousand -- and
    only bounded agreement can be asserted.
    """

    CASES = {
        "geo file": lambda: make_geometric_file(
            capacity=2000, buffer_capacity=100, retain_records=False,
            admission="always"),
        "multi file": lambda: make_multi_file(
            capacity=2000, buffer_capacity=100, retain_records=False,
            admission="always"),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_startup_clock_exactly_equal(self, name):
        stream = 2000  # exactly one reservoir fill: start-up only
        scalar = self.CASES[name]()
        for _ in range(stream):
            scalar.offer(None)
        batched = self.CASES[name]()
        for start in range(0, stream, 512):
            batched.offer_many([None] * min(512, stream - start))
        a, b = scalar.stats(), batched.stats()
        assert a.seen == b.seen
        assert a.samples_added == b.samples_added
        assert a.flushes == b.flushes
        assert a.clock == b.clock
        assert a.io.seeks == b.io.seeks
        assert a.io.blocks_written == b.io.blocks_written

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_steady_state_cadence_within_replacement_noise(self, name):
        stream = 7500
        scalar = self.CASES[name]()
        for _ in range(stream):
            scalar.offer(None)
        batched = self.CASES[name]()
        for start in range(0, stream, 512):
            batched.offer_many([None] * min(512, stream - start))
        a, b = scalar.stats(), batched.stats()
        assert a.seen == b.seen
        assert a.samples_added == b.samples_added
        # ~5500 steady-state records at <= B/N = 5% replacement
        # probability: the join counts differ by O(sqrt(275)), i.e.
        # well under one flush's worth (100 records) of drift.
        assert abs(a.flushes - b.flushes) <= 2
        assert abs(a.clock - b.clock) <= 0.05 * a.clock

    def test_retained_mode_sample_size_matches(self):
        scalar = make_geometric_file(capacity=500, buffer_capacity=50,
                                     admission="always")
        batched = make_geometric_file(capacity=500, buffer_capacity=50,
                                      admission="always")
        records = keyed_records(1800)
        for r in records:
            scalar.offer(r)
        batched.offer_many(records)
        assert len(batched.sample()) == len(scalar.sample())
        batched.check_invariants()


class TestBatchedFeedStream:
    def test_sequence_and_iterator_paths_agree_with_scalar(self):
        """Inclusion frequencies match across all three feed modes."""
        trials, capacity, stream = 250, 40, 400
        modes = {
            "scalar": lambda t: self._feed(t, batch=1, sequence=False),
            "iterator": lambda t: self._feed(t + 10 ** 6, batch=64,
                                             sequence=False),
            "sequence": lambda t: self._feed(t + 2 * 10 ** 6, batch=64,
                                             sequence=True),
        }
        counters = {name: collections.Counter() for name in modes}
        for t in range(trials):
            for name, run in modes.items():
                counters[name].update(run(t))
        expected = {key: trials * capacity / stream
                    for key in range(stream)}
        for name, counts in counters.items():
            assert chi_square_p(counts, expected) > P_MIN, name

    def _feed(self, seed, *, batch, sequence, capacity=40, stream=400):
        reservoir = make_geometric_file(capacity=capacity,
                                        buffer_capacity=10, seed=seed)
        records = keyed_records(stream)
        source = records if sequence else iter(records)
        consumed = feed_stream(source, reservoir, batch_size=batch)
        assert consumed == stream
        assert reservoir.stats().seen == stream
        return [r.key for r in reservoir.sample()]

    def test_max_records_budget_respected(self):
        for batch, sequence in [(1, False), (64, False), (64, True)]:
            reservoir = make_geometric_file(capacity=50,
                                            buffer_capacity=10, seed=9)
            records = keyed_records(1000)
            source = records if sequence else iter(records)
            consumed = feed_stream(source, reservoir, max_records=300,
                                   batch_size=batch)
            assert consumed == 300
            assert reservoir.stats().seen == 300

    def test_short_stream_ends_cleanly(self):
        reservoir = make_geometric_file(capacity=200, buffer_capacity=20,
                                        seed=1)
        consumed = feed_stream(iter(keyed_records(150)), reservoir,
                               batch_size=32)
        assert consumed == 150
        assert reservoir.stats().seen == 150

    def test_rejects_always_mode(self):
        reservoir = make_geometric_file(admission="always")
        with pytest.raises(ValueError):
            feed_stream(iter(keyed_records(10)), reservoir)

    def test_rejects_bad_batch_size(self):
        reservoir = make_geometric_file()
        with pytest.raises(ValueError):
            feed_stream(iter(keyed_records(10)), reservoir, batch_size=0)
