"""Tests for the benchmark harness (runner, experiment specs, reports, CLI)."""

import json

import pytest

from repro.bench import (
    ALTERNATIVE_NAMES,
    ExperimentSpec,
    ascii_chart,
    experiment_1,
    experiment_2,
    experiment_3,
    io_summary_table,
    run_until,
    throughput_table,
    to_csv,
)
from repro.bench.runner import RunResult, SeriesPoint
from repro.cli import main as cli_main


class TestExperimentSpecs:
    def test_experiment_1_paper_scale_counts(self):
        spec = experiment_1(scale=1)
        assert spec.capacity == 50 * 1024 ** 3 // 50
        assert spec.buffer_capacity == 500 * 1024 ** 2 // 50
        assert spec.horizon_seconds == pytest.approx(20 * 3600)

    def test_experiment_2_uses_1kb_records(self):
        spec = experiment_2(scale=1)
        assert spec.record_size == 1024
        assert spec.capacity == 50 * 1024 ** 3 // 1024

    def test_experiment_3_smaller_buffer(self):
        spec3 = experiment_3(scale=1)
        spec1 = experiment_1(scale=1)
        assert spec3.buffer_capacity == spec1.buffer_capacity // 10

    def test_scaling_divides_counts_and_horizon(self):
        base = experiment_1(scale=1)
        scaled = experiment_1(scale=100)
        assert scaled.capacity == pytest.approx(base.capacity / 100, rel=0.01)
        assert scaled.horizon_seconds == base.horizon_seconds / 100

    def test_disk_parameters_match_paper(self):
        params = experiment_1().disk_parameters()
        assert params.seek_time == 0.010
        assert params.transfer_rate == 40 * 1024 ** 2
        assert params.block_size == 32 * 1024

    def test_make_all_builds_five_alternatives(self):
        spec = experiment_1(scale=2000)
        made = spec.make_all()
        assert set(made) == set(ALTERNATIVE_NAMES)
        for name, reservoir in made.items():
            assert reservoir.name == name

    def test_unknown_alternative_rejected(self):
        with pytest.raises(ValueError):
            experiment_1(scale=2000).make("btree")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            experiment_1(scale=-1)

    def test_scale_zero_is_smoke_mode(self):
        spec = experiment_1(scale=0)
        assert spec.capacity == ExperimentSpec.SMOKE_CAPACITY
        assert spec.buffer_capacity == ExperimentSpec.SMOKE_BUFFER
        assert 0 < spec.horizon_seconds < 60


class TestRunner:
    def test_run_reaches_horizon(self):
        spec = experiment_1(scale=2000)
        result = run_until(spec.make("scan"), spec.horizon_seconds)
        assert result.final_clock >= spec.horizon_seconds
        assert result.final_samples > 0
        assert result.points[0].clock <= result.points[-1].clock

    def test_max_records_cap(self):
        spec = experiment_1(scale=2000)
        result = run_until(spec.make("multiple geo files"),
                           spec.horizon_seconds, max_records=1000)
        assert result.final_samples <= 1000

    def test_io_stats_collected(self):
        spec = experiment_1(scale=2000)
        result = run_until(spec.make("geo file"), spec.horizon_seconds)
        assert result.seeks > 0
        assert result.blocks_written > 0

    def test_bad_horizon_rejected(self):
        spec = experiment_1(scale=2000)
        with pytest.raises(ValueError):
            run_until(spec.make("scan"), 0.0)

    def test_samples_at_interpolates(self):
        result = RunResult("x", points=[SeriesPoint(10.0, 100),
                                        SeriesPoint(20.0, 300)])
        assert result.samples_at(10.0) == 100
        assert result.samples_at(15.0) == pytest.approx(200.0)
        assert result.samples_at(25.0) == 300
        assert result.samples_at(5.0) == pytest.approx(50.0)

    def test_samples_at_empty(self):
        assert RunResult("x").samples_at(5.0) == 0.0


class TestReports:
    def make_results(self):
        a = RunResult("fast", points=[SeriesPoint(t, t * 100)
                                      for t in range(1, 11)])
        b = RunResult("slow", points=[SeriesPoint(t, t * 10)
                                      for t in range(1, 11)])
        a.seeks, b.seeks = 5, 50
        return [a, b]

    def test_throughput_table_shape(self):
        text = throughput_table(self.make_results(), horizon=10.0,
                                n_rows=5, unit=1.0, unit_label="")
        lines = text.strip().splitlines()
        assert len(lines) == 6  # header + 5 rows
        assert "fast" in lines[0] and "slow" in lines[0]

    def test_io_summary_contains_names_and_seeks(self):
        text = io_summary_table(self.make_results())
        assert "fast" in text and "50" in text

    def test_ascii_chart_renders(self):
        text = ascii_chart(self.make_results(), horizon=10.0, width=30,
                           height=8)
        assert "fast" in text and "slow" in text
        assert "|" in text and "+" in text

    def test_csv_round_trip(self):
        text = to_csv(self.make_results())
        lines = text.strip().splitlines()
        assert lines[0] == "alternative,clock_seconds,samples_added"
        assert len(lines) == 21

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            throughput_table([], 10.0)
        with pytest.raises(ValueError):
            ascii_chart([], 10.0)


class TestCLI:
    def test_smoke(self, capsys):
        rc = cli_main(["fig7a", "--scale", "2000", "--only", "scan",
                       "--only", "geo file", "--no-chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "experiment 1" in out
        assert "scan" in out and "geo file" in out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        rc = cli_main(["fig7c", "--scale", "2000", "--only", "scan",
                       "--csv", str(path), "--no-chart"])
        assert rc == 0
        assert path.read_text().startswith("alternative,clock_seconds")


class TestReportFlag:
    def test_report_runs_without_experiment(self, tmp_path, capsys):
        path = tmp_path / "pipe.json"
        rc = cli_main(["--report", f"pipeline={path}"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "pipelined flush smoke"

    def test_report_default_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = cli_main(["--report", "pipeline"])
        assert rc == 0
        capsys.readouterr()
        assert (tmp_path / "BENCH_pipeline.json").exists()


class TestCLIErrors:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig7z"])

    def test_unknown_alternative_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig7a", "--only", "btree"])

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig7b"])
        assert args.scale == 100
        assert args.only is None
        assert args.csv is None


class TestReportEdges:
    def test_chart_with_flat_series(self):
        flat = RunResult("flat", points=[SeriesPoint(1.0, 0),
                                         SeriesPoint(10.0, 0)])
        text = ascii_chart([flat], horizon=10.0, width=20, height=5)
        assert "flat" in text

    def test_throughput_table_time_units(self):
        results = [RunResult("x", points=[SeriesPoint(7200.0, 10)])]
        text = throughput_table(results, horizon=7200.0, n_rows=2,
                                unit=1.0, unit_label="")
        assert "h" in text  # hours formatting kicks in

    def test_csv_escaping_free_names(self):
        # Alternative names contain spaces but no commas; the CSV stays
        # three clean columns.
        result = RunResult("local overwrite",
                           points=[SeriesPoint(1.0, 5)])
        lines = to_csv([result]).strip().splitlines()
        assert lines[1].count(",") == 2
