"""Tests for biased sampling with the geometric file (Section 7.3)."""

import collections
import math

import pytest

from conftest import TEST_BLOCK, small_disk_params
from repro.core.biased_file import BiasedGeometricFile
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.estimate import horvitz_thompson_count, horvitz_thompson_sum
from repro.sampling.weights import exponential_recency, uniform_weight
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


def make_biased(capacity=500, buffer_capacity=50, weight_fn=uniform_weight,
                seed=0, record_size=40):
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=record_size, retain_records=True,
        beta_records=max(4, buffer_capacity // 10),
    )
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return BiasedGeometricFile(device, config, weight_fn, seed=seed)


def feed(bf, n, start=0):
    for i in range(start, start + n):
        bf.offer(Record(key=i, value=1.0, timestamp=float(i)))


class TestConstruction:
    def test_requires_record_retention(self):
        config = GeometricFileConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, retain_records=False)
        device = SimulatedBlockDevice(1000, small_disk_params())
        with pytest.raises(ValueError):
            BiasedGeometricFile(device, config)

    def test_count_only_ingest_rejected(self):
        bf = make_biased()
        with pytest.raises(TypeError):
            bf.ingest(100)

    def test_nonpositive_weight_rejected(self):
        bf = make_biased(weight_fn=lambda r: -1.0)
        with pytest.raises(ValueError):
            bf.offer(Record(key=0))


class TestUniformDegenerate:
    def test_behaves_like_unbiased_file(self):
        bf = make_biased(capacity=500, buffer_capacity=50)
        feed(bf, 3000)
        bf.check_invariants()
        keys = [r.key for r, _ in bf.items()]
        assert len(keys) == 500
        assert len(set(keys)) == 500
        assert bf.total_weight == pytest.approx(3000.0)

    def test_all_true_weights_equal_one_after_startup(self):
        bf = make_biased(capacity=500, buffer_capacity=50)
        feed(bf, 3000)
        post_startup = [w for r, w in bf.items() if r.key >= 500]
        assert post_startup
        assert all(w == pytest.approx(1.0) for w in post_startup)

    def test_startup_records_carry_mean_weight(self):
        bf = make_biased(capacity=500, buffer_capacity=50)
        feed(bf, 500)  # exactly the startup
        for _record, weight in bf.items():
            assert weight == pytest.approx(1.0)
        assert bf.total_weight == pytest.approx(500.0)


class TestBias:
    def test_inclusion_proportional_to_weight(self):
        """Definition 1 at the whole-structure level."""
        def weight_fn(record):
            return 3.0 if record.key % 2 == 0 else 1.0

        trials, capacity, stream = 150, 100, 1000
        counts = collections.Counter()
        for t in range(trials):
            bf = make_biased(capacity=capacity, buffer_capacity=20,
                             weight_fn=weight_fn, seed=3000 + t)
            feed(bf, stream)
            counts.update(r.key for r, _ in bf.items())
        # Restrict to post-startup keys, whose true weight is exact.
        heavy = [counts[k] for k in range(200, stream, 2)]
        light = [counts[k] for k in range(201, stream, 2)]
        ratio = (sum(heavy) / len(heavy)) / (sum(light) / len(light))
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_recency_bias(self):
        bf = make_biased(capacity=200, buffer_capacity=20,
                         weight_fn=exponential_recency(half_life=500.0))
        feed(bf, 5000)
        mean_key = sum(r.key for r, _ in bf.items()) / 200
        assert mean_key > 3200  # uniform would give ~2500

    def test_overflow_event_fires_and_preserves_size(self):
        def weight_fn(record):
            return 10 ** 5 if record.key == 700 else 1.0

        bf = make_biased(capacity=500, buffer_capacity=50,
                         weight_fn=weight_fn)
        feed(bf, 2000)
        bf.check_invariants()
        assert bf.overflow_events >= 1
        assert len(list(bf.items())) == 500

    def test_huge_record_admitted_with_certainty(self):
        def weight_fn(record):
            return 10 ** 8 if record.key == 600 else 1.0

        hits = 0
        for seed in range(10):
            bf = make_biased(capacity=500, buffer_capacity=50,
                             weight_fn=weight_fn, seed=seed)
            feed(bf, 650)
            if 600 in {r.key for r, _ in bf.items()} | {
                r.key for r in bf.buffer
            }:
                hits += 1
        assert hits == 10


class TestTrueWeights:
    def test_lemma_3_inclusion_probabilities_sum_to_capacity(self):
        """sum over residents of Pr[r in R] cannot exceed... but the
        sum over the *stream* of |R| w / totalWeight equals |R|; check
        resident probabilities are valid and the HT identity holds."""
        bf = make_biased(capacity=300, buffer_capacity=30)
        feed(bf, 2000)
        for _record, weight in bf.items():
            p = bf.inclusion_probability(weight)
            assert 0.0 < p <= 1.0

    def test_ht_count_is_unbiased(self):
        """Estimate the stream length from the biased sample."""
        def weight_fn(record):
            return math.exp(record.timestamp / 1000.0)

        estimates = []
        for seed in range(25):
            bf = make_biased(capacity=300, buffer_capacity=30,
                             weight_fn=weight_fn, seed=seed)
            feed(bf, 3000)
            est = horvitz_thompson_count(
                bf.items(), bf.total_weight, bf.capacity,
                predicate=lambda r: True,
            )
            estimates.append(est.value)
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(3000, rel=0.1)

    def test_ht_sum_with_predicate(self):
        bf = make_biased(capacity=400, buffer_capacity=40,
                         weight_fn=exponential_recency(half_life=2000.0),
                         seed=9)
        feed(bf, 4000)
        est = horvitz_thompson_sum(
            bf.items(), bf.total_weight, bf.capacity,
            value=lambda r: 1.0,
            predicate=lambda r: r.key < 2000,
        )
        assert est.value == pytest.approx(2000, rel=0.45)

    def test_multipliers_dropped_with_dead_subsamples(self):
        bf = make_biased(capacity=300, buffer_capacity=30)
        feed(bf, 10000)
        alive = {ledger.ident for ledger in bf.subsamples}
        assert set(bf.multipliers) == alive


class TestBiasedMultiFile:
    """Sections 6 + 7 composed."""

    @staticmethod
    def make_biased_multi(weight_fn=uniform_weight, seed=0):
        from repro.core.biased_file import BiasedMultipleGeometricFiles
        from repro.core.multi import MultiFileConfig

        config = MultiFileConfig(
            capacity=500, buffer_capacity=50, record_size=40,
            retain_records=True, beta_records=5, alpha_prime=0.6,
        )
        blocks = BiasedMultipleGeometricFiles.required_blocks(
            config, TEST_BLOCK
        )
        device = SimulatedBlockDevice(blocks, small_disk_params())
        return BiasedMultipleGeometricFiles(device, config, weight_fn,
                                            seed=seed)

    def test_basic_operation_and_invariants(self):
        bf = self.make_biased_multi()
        feed(bf, 3000)
        bf.check_invariants()
        items = list(bf.items())
        keys = [r.key for r, _ in items]
        assert len(keys) == 500
        assert len(set(keys)) == 500
        assert bf.total_weight == pytest.approx(3000.0)

    def test_recency_bias_through_striping(self):
        bf = self.make_biased_multi(exponential_recency(half_life=400.0))
        feed(bf, 4000)
        bf.check_invariants()
        mean_key = sum(r.key for r, _ in bf.items()) / 500
        assert mean_key > 2800  # uniform would give ~2000

    def test_ht_count_unbiased(self):
        estimates = []
        for seed in range(15):
            bf = self.make_biased_multi(
                exponential_recency(half_life=800.0), seed=seed
            )
            feed(bf, 2500)
            est = horvitz_thompson_count(
                bf.items(), bf.total_weight, bf.capacity,
                predicate=lambda r: True,
            )
            estimates.append(est.value)
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(2500, rel=0.15)

    def test_count_only_rejected(self):
        bf = self.make_biased_multi()
        with pytest.raises(TypeError):
            bf.ingest(10)

    def test_requires_record_retention(self):
        from repro.core.biased_file import BiasedMultipleGeometricFiles
        from repro.core.multi import MultiFileConfig

        config = MultiFileConfig(capacity=500, buffer_capacity=50,
                                 record_size=40, retain_records=False,
                                 alpha_prime=0.6)
        device = SimulatedBlockDevice(10_000, small_disk_params())
        with pytest.raises(ValueError):
            BiasedMultipleGeometricFiles(device, config)
