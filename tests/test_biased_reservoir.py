"""Unit tests for biased reservoir sampling (Algorithm 4)."""

import collections
import math
import random

import pytest

from repro.sampling import BiasedReservoir, ReservoirSample
from repro.sampling.weights import (
    clamped,
    exponential_recency,
    linear_recency,
    uniform_weight,
    value_proportional,
)
from repro.storage.records import Record


def records(n, weight_attr=None):
    return [Record(key=i, value=float(weight_attr(i) if weight_attr else i),
                   timestamp=float(i)) for i in range(n)]


class TestUniformDegenerate:
    def test_matches_plain_reservoir_distribution(self):
        """With f == 1 the biased sampler is an ordinary reservoir."""
        trials, n, stream = 2000, 5, 40
        biased_counts = collections.Counter()
        plain_counts = collections.Counter()
        data = records(stream)
        for t in range(trials):
            biased = BiasedReservoir(n, uniform_weight, random.Random(t))
            biased.extend(data)
            biased_counts.update(r.key for r in biased)
            plain = ReservoirSample(n, random.Random(t + 10 ** 6))
            plain.extend(range(stream))
            plain_counts.update(plain.contents())
        expected = trials * n / stream
        sigma = math.sqrt(trials * (n / stream))
        for key in range(stream):
            assert abs(biased_counts[key] - expected) < 5 * sigma
            assert abs(biased_counts[key] - plain_counts[key]) < 7 * sigma

    def test_uniform_true_weights_all_equal(self):
        biased = BiasedReservoir(10, uniform_weight, random.Random(0))
        biased.extend(records(100))
        weights = [w for _, w in biased.items()]
        assert all(w == pytest.approx(weights[0]) for w in weights)


class TestBiasedInclusion:
    def test_inclusion_proportional_to_weight(self):
        """Definition 1: Pr[r in R] proportional to f(r)."""
        # Two classes of records: weight 1 and weight 4.
        def weight_fn(record):
            return 4.0 if record.key % 2 == 0 else 1.0

        trials, n, stream = 3000, 4, 80
        counts = collections.Counter()
        data = records(stream)
        for t in range(trials):
            biased = BiasedReservoir(n, weight_fn, random.Random(t))
            biased.extend(data)
            counts.update(r.key for r in biased)
        total_weight = 40 * 4.0 + 40 * 1.0
        heavy = sum(counts[k] for k in range(0, stream, 2)) / (trials * 40)
        light = sum(counts[k] for k in range(1, stream, 2)) / (trials * 40)
        assert heavy / light == pytest.approx(4.0, rel=0.15)
        # And the absolute level matches n * f / totalWeight.
        assert heavy == pytest.approx(n * 4.0 / total_weight, rel=0.1)

    def test_recency_bias_prefers_recent_records(self):
        weight_fn = exponential_recency(half_life=20.0)
        biased = BiasedReservoir(50, weight_fn, random.Random(5))
        biased.extend(records(2000))
        mean_key = sum(r.key for r in biased) / len(biased)
        assert mean_key > 1600  # uniform would give ~1000

    def test_size_and_seen(self):
        biased = BiasedReservoir(10, uniform_weight, random.Random(0))
        biased.extend(records(100))
        assert len(biased) == 10
        assert biased.seen == 100
        assert biased.is_full


class TestWeightBookkeeping:
    def test_total_weight_tracks_stream(self):
        biased = BiasedReservoir(5, uniform_weight, random.Random(0))
        biased.extend(records(50))
        assert biased.total_weight == pytest.approx(50.0)

    def test_overflow_event_rescales(self):
        """A huge-weight record must trigger Section 7.3.2 rescaling."""
        def weight_fn(record):
            return 1000.0 if record.key == 30 else 1.0

        biased = BiasedReservoir(5, weight_fn, random.Random(0))
        biased.extend(records(40))
        assert biased.overflow_events >= 1
        # Step (3): totalWeight was reset to |R| * f(r) at the event
        # and keeps growing afterwards.
        assert biased.total_weight >= 5 * 1000.0

    def test_huge_record_is_admitted_with_certainty(self):
        def weight_fn(record):
            return 10 ** 6 if record.key == 20 else 1.0

        for seed in range(20):
            biased = BiasedReservoir(3, weight_fn, random.Random(seed))
            biased.extend(records(21))
            assert 20 in {r.key for r in biased}

    def test_true_weight_exact_without_overflow(self):
        """Guarantee (1): true weight == f(r) when no later overflow."""
        biased = BiasedReservoir(5, uniform_weight, random.Random(0))
        biased.extend(records(200))
        for record, true_weight in biased.items():
            if record.key >= 5:  # not part of the startup fill
                assert true_weight == pytest.approx(1.0)

    def test_inclusion_probability_formula(self):
        biased = BiasedReservoir(5, uniform_weight, random.Random(0))
        biased.extend(records(100))
        _, w = next(iter(biased.items()))
        assert biased.inclusion_probability(w) == pytest.approx(
            5 * w / biased.total_weight
        )

    def test_renormalization_keeps_true_weights(self):
        """Scale folding must not change observable true weights."""
        import repro.sampling.biased_reservoir as mod
        original = mod._RENORMALIZE_ABOVE
        mod._RENORMALIZE_ABOVE = 10.0  # force frequent folding
        try:
            def weight_fn(record):
                return 50.0 if record.key % 10 == 0 else 1.0

            biased = BiasedReservoir(4, weight_fn, random.Random(3))
            biased.extend(records(200))
            for record, true_weight in biased.items():
                assert true_weight > 0
            assert biased._scale <= 10.0 * 50.0
        finally:
            mod._RENORMALIZE_ABOVE = original


class TestValidation:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BiasedReservoir(0)

    def test_nonpositive_weight_rejected(self):
        biased = BiasedReservoir(5, lambda r: 0.0)
        with pytest.raises(ValueError):
            biased.offer(Record(key=1))

    def test_inclusion_probability_before_any_offer(self):
        biased = BiasedReservoir(5)
        with pytest.raises(ValueError):
            biased.inclusion_probability(1.0)


class TestWeightFunctions:
    def test_uniform(self):
        assert uniform_weight(Record(key=1)) == 1.0

    def test_exponential_recency_ratio(self):
        fn = exponential_recency(half_life=10.0)
        a = fn(Record(key=0, timestamp=0.0))
        b = fn(Record(key=1, timestamp=10.0))
        assert b / a == pytest.approx(2.0)

    def test_exponential_recency_validation(self):
        with pytest.raises(ValueError):
            exponential_recency(0.0)

    def test_linear_recency(self):
        fn = linear_recency(slope=2.0, floor=1.0)
        assert fn(Record(key=0, timestamp=3.0)) == 7.0
        with pytest.raises(ValueError):
            linear_recency(-1.0)

    def test_value_proportional(self):
        fn = value_proportional()
        assert fn(Record(key=0, value=-5.0)) == pytest.approx(5.0, abs=1e-9)
        assert fn(Record(key=0, value=0.0)) > 0

    def test_clamped(self):
        fn = clamped(lambda r: r.value, 1.0, 10.0)
        assert fn(Record(key=0, value=0.5)) == 1.0
        assert fn(Record(key=0, value=100.0)) == 10.0
        assert fn(Record(key=0, value=5.0)) == 5.0
        with pytest.raises(ValueError):
            clamped(uniform_weight, 2.0, 1.0)
