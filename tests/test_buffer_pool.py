"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer_pool import LRUBufferPool
from repro.storage.device import MemoryBlockDevice, SimulatedBlockDevice
from repro.storage.disk_model import DiskParameters


def make_pool(capacity=3, n_blocks=16, block_size=64):
    device = MemoryBlockDevice(n_blocks, block_size=block_size)
    return device, LRUBufferPool(device, capacity)


class TestBasics:
    def test_get_fetches_from_device(self):
        device, pool = make_pool()
        device.write_blocks(5, b"\x07" * 64)
        assert bytes(pool.get(5)) == b"\x07" * 64
        assert pool.stats.misses == 1

    def test_get_twice_hits_cache(self):
        _, pool = make_pool()
        pool.get(1)
        pool.get(1)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_put_then_flush_reaches_device(self):
        device, pool = make_pool()
        pool.put(2, b"\x09" * 64)
        assert device.read_blocks(2, 1) == b"\x00" * 64  # write-back
        pool.flush_block(2)
        assert device.read_blocks(2, 1) == b"\x09" * 64

    def test_put_wrong_size_rejected(self):
        _, pool = make_pool()
        with pytest.raises(ValueError):
            pool.put(0, b"short")

    def test_len_tracks_cached_frames(self):
        _, pool = make_pool(capacity=3)
        pool.get(0)
        pool.get(1)
        assert len(pool) == 2

    def test_contains_has_no_lru_side_effect(self):
        _, pool = make_pool(capacity=2)
        pool.get(0)
        pool.get(1)
        assert pool.contains(0)
        pool.get(2)  # evicts LRU, which must still be block 0
        assert not pool.contains(0)

    def test_needs_at_least_one_frame(self):
        device = MemoryBlockDevice(4, block_size=64)
        with pytest.raises(ValueError):
            LRUBufferPool(device, 0)


class TestEviction:
    def test_lru_order(self):
        _, pool = make_pool(capacity=2)
        pool.get(0)
        pool.get(1)
        pool.get(0)   # touch 0: now 1 is LRU
        pool.get(2)   # evicts 1
        assert pool.contains(0) and pool.contains(2)
        assert not pool.contains(1)
        assert pool.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        device, pool = make_pool(capacity=1)
        pool.put(3, b"\x05" * 64)
        pool.get(4)  # evicts dirty block 3
        assert device.read_blocks(3, 1) == b"\x05" * 64
        assert pool.stats.write_backs == 1

    def test_clean_eviction_does_not_write(self):
        device = SimulatedBlockDevice(16, DiskParameters(block_size=64))
        pool = LRUBufferPool(device, 1)
        pool.get(0)
        pool.get(1)
        assert device.model.stats.writes == 0

    def test_pinned_frames_survive_pressure(self):
        _, pool = make_pool(capacity=2)
        pool.pin(0)
        pool.get(1)
        pool.get(2)  # must evict 1, not the pinned 0
        assert pool.contains(0)
        pool.unpin(0)

    def test_all_pinned_raises(self):
        _, pool = make_pool(capacity=1)
        pool.pin(0)
        with pytest.raises(RuntimeError):
            pool.get(1)


class TestDirtyTracking:
    def test_mark_dirty_requires_cached_block(self):
        _, pool = make_pool()
        with pytest.raises(KeyError):
            pool.mark_dirty(7)

    def test_in_place_mutation_with_mark_dirty(self):
        device, pool = make_pool()
        frame = pool.get(0)
        frame[0] = 0xAA
        pool.mark_dirty(0)
        pool.flush_all()
        assert device.read_blocks(0, 1)[0] == 0xAA

    def test_unpin_dirty_flag(self):
        device, pool = make_pool()
        frame = pool.pin(0)
        frame[1] = 0xBB
        pool.unpin(0, dirty=True)
        pool.flush_all()
        assert device.read_blocks(0, 1)[1] == 0xBB

    def test_unpin_unpinned_raises(self):
        _, pool = make_pool()
        pool.get(0)
        with pytest.raises(KeyError):
            pool.unpin(0)

    def test_flush_all_clears_dirty_but_keeps_frames(self):
        device, pool = make_pool()
        pool.put(0, b"\x01" * 64)
        pool.put(1, b"\x02" * 64)
        pool.flush_all()
        assert pool.stats.write_backs == 2
        assert len(pool) == 2
        pool.flush_all()  # nothing dirty now
        assert pool.stats.write_backs == 2

    def test_drop_all_flushes_then_empties(self):
        device, pool = make_pool()
        pool.put(0, b"\x03" * 64)
        pool.drop_all()
        assert len(pool) == 0
        assert device.read_blocks(0, 1) == b"\x03" * 64

    def test_drop_all_refuses_pinned(self):
        _, pool = make_pool()
        pool.pin(0)
        with pytest.raises(RuntimeError):
            pool.drop_all()


class TestStats:
    def test_hit_ratio(self):
        _, pool = make_pool()
        pool.get(0)
        pool.get(0)
        pool.get(0)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        _, pool = make_pool()
        assert pool.stats.hit_ratio == 0.0
