"""Tests for geometric-file checkpoint / recovery."""

import io
import math

import pytest

from conftest import TEST_BLOCK, make_geometric_file, small_disk_params
from repro.core.biased_file import BiasedGeometricFile
from repro.core.checkpoint import load_geometric_file, save_geometric_file
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


def feed(gf, n, start=0):
    for i in range(start, start + n):
        gf.offer(Record(key=i, value=float(i), timestamp=float(i)))


def round_trip(gf, weight_fn=None):
    sink = io.StringIO()
    save_geometric_file(gf, sink)
    sink.seek(0)
    device = SimulatedBlockDevice(gf.device.n_blocks, small_disk_params())
    return load_geometric_file(sink, device, weight_fn=weight_fn)


class TestRoundTrip:
    def test_state_survives(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50)
        feed(gf, 2345)
        restored = round_trip(gf)
        assert restored.seen == gf.seen
        assert restored.samples_added == gf.samples_added
        assert restored.flushes == gf.flushes
        assert restored.disk_size == gf.disk_size
        assert restored.buffer.count == gf.buffer.count
        restored.check_invariants()

    def test_sample_contents_survive(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50)
        feed(gf, 2000)
        restored = round_trip(gf)
        original_keys = sorted(r.key for ledger in gf.subsamples
                               for r in ledger.records)
        restored_keys = sorted(r.key for ledger in restored.subsamples
                               for r in ledger.records)
        assert original_keys == restored_keys

    def test_continuation_is_bit_identical(self):
        """The restored file must make the same future decisions."""
        gf = make_geometric_file(capacity=400, buffer_capacity=40)
        feed(gf, 1234)
        restored = round_trip(gf)
        feed(gf, 1000, start=1234)
        feed(restored, 1000, start=1234)
        keys_a = sorted(r.key for r in gf.sample())
        keys_b = sorted(r.key for r in restored.sample())
        assert keys_a == keys_b
        assert gf.flushes == restored.flushes
        gf.check_invariants()
        restored.check_invariants()

    def test_mid_startup_checkpoint(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 321)
        restored = round_trip(gf)
        assert restored.in_startup
        feed(restored, 2000, start=321)
        restored.check_invariants()
        assert restored.disk_size == 1000

    def test_count_only_checkpoint(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50,
                                 retain_records=False, admission="always")
        gf.ingest(1777)
        restored = round_trip(gf)
        assert restored.disk_size == gf.disk_size
        assert restored.buffer.count == gf.buffer.count
        restored.ingest(1000)
        restored.check_invariants()

    def test_payloads_survive(self):
        gf = make_geometric_file(capacity=100, buffer_capacity=10)
        for i in range(100):
            gf.offer(Record(key=i, payload=f"p{i}".encode()))
        restored = round_trip(gf)
        payloads = {r.key: r.payload for ledger in restored.subsamples
                    for r in ledger.records}
        assert payloads[42] == b"p42"


class TestBiasedRoundTrip:
    @staticmethod
    def weight_fn(record):
        return math.exp(record.timestamp / 500.0)

    def make_biased(self):
        config = GeometricFileConfig(
            capacity=300, buffer_capacity=30, record_size=40,
            retain_records=True, beta_records=4,
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params())
        return BiasedGeometricFile(device, config, self.weight_fn, seed=0)

    def test_biased_state_survives(self):
        bf = self.make_biased()
        feed(bf, 1500)
        sink = io.StringIO()
        save_geometric_file(bf, sink)
        sink.seek(0)
        device = SimulatedBlockDevice(bf.device.n_blocks,
                                      small_disk_params())
        restored = load_geometric_file(sink, device,
                                       weight_fn=self.weight_fn)
        assert isinstance(restored, BiasedGeometricFile)
        assert restored.total_weight == pytest.approx(bf.total_weight)
        assert restored.multipliers == bf.multipliers
        original = sorted((r.key, w) for r, w in bf.items())
        recovered = sorted((r.key, w) for r, w in restored.items())
        assert original == recovered
        restored.check_invariants()

    def test_biased_restore_requires_weight_fn(self):
        bf = self.make_biased()
        feed(bf, 500)
        sink = io.StringIO()
        save_geometric_file(bf, sink)
        sink.seek(0)
        device = SimulatedBlockDevice(bf.device.n_blocks,
                                      small_disk_params())
        with pytest.raises(ValueError):
            load_geometric_file(sink, device)


class TestValidation:
    def test_unknown_version_rejected(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        feed(gf, 100)
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        text = sink.getvalue().replace('"version": 1', '"version": 99')
        device = SimulatedBlockDevice(gf.device.n_blocks,
                                      small_disk_params())
        with pytest.raises(ValueError):
            load_geometric_file(io.StringIO(text), device)

    def test_unknown_kind_rejected(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        feed(gf, 100)
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        text = sink.getvalue().replace('"GeometricFile"', '"Mystery"')
        device = SimulatedBlockDevice(gf.device.n_blocks,
                                      small_disk_params())
        with pytest.raises(ValueError):
            load_geometric_file(io.StringIO(text), device)


class TestMultiFileRoundTrip:
    def make_multi(self):
        import conftest
        return conftest.make_multi_file(capacity=600, buffer_capacity=60,
                                        alpha_prime=0.6)

    def test_multi_state_survives_and_continues_identically(self):
        import io as _io

        from repro.core.multi import MultipleGeometricFiles
        from repro.storage.device import SimulatedBlockDevice
        from conftest import small_disk_params

        mf = self.make_multi()
        feed(mf, 2500)
        sink = _io.StringIO()
        save_geometric_file(mf, sink)
        sink.seek(0)
        device = SimulatedBlockDevice(mf.device.n_blocks,
                                      small_disk_params())
        restored = load_geometric_file(sink, device)
        assert isinstance(restored, MultipleGeometricFiles)
        assert restored.n_files == mf.n_files
        assert restored.disk_size == mf.disk_size
        feed(mf, 1500, start=2500)
        feed(restored, 1500, start=2500)
        keys_a = sorted(r.key for r in mf.sample())
        keys_b = sorted(r.key for r in restored.sample())
        assert keys_a == keys_b
        mf.check_invariants()
        restored.check_invariants()

    def test_multi_dummy_slots_restored(self):
        import io as _io

        from repro.storage.device import SimulatedBlockDevice
        from conftest import small_disk_params

        mf = self.make_multi()
        feed(mf, 1800)
        sink = _io.StringIO()
        save_geometric_file(mf, sink)
        sink.seek(0)
        device = SimulatedBlockDevice(mf.device.n_blocks,
                                      small_disk_params())
        restored = load_geometric_file(sink, device)
        for original, recovered in zip(mf.files, restored.files):
            assert original.dummy_slots == recovered.dummy_slots


class TestBiasedMultiRoundTrip:
    @staticmethod
    def weight_fn(record):
        return 1.0 + record.timestamp / 1000.0

    def test_biased_multi_survives_and_continues(self):
        import io as _io

        from repro.core.biased_file import BiasedMultipleGeometricFiles
        from repro.core.multi import MultiFileConfig
        from conftest import small_disk_params

        config = MultiFileConfig(capacity=400, buffer_capacity=40,
                                 record_size=40, retain_records=True,
                                 beta_records=4, alpha_prime=0.6)
        blocks = BiasedMultipleGeometricFiles.required_blocks(config,
                                                              TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params())
        bf = BiasedMultipleGeometricFiles(device, config, self.weight_fn,
                                          seed=0)
        feed(bf, 1800)
        sink = _io.StringIO()
        save_geometric_file(bf, sink)
        sink.seek(0)
        device2 = SimulatedBlockDevice(blocks, small_disk_params())
        restored = load_geometric_file(sink, device2,
                                       weight_fn=self.weight_fn)
        assert isinstance(restored, BiasedMultipleGeometricFiles)
        assert restored.total_weight == pytest.approx(bf.total_weight)
        feed(bf, 600, start=1800)
        feed(restored, 600, start=1800)
        assert (sorted((r.key, w) for r, w in bf.items())
                == sorted((r.key, w) for r, w in restored.items()))
        restored.check_invariants()
