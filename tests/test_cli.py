"""Tier-1 smoke tests for the ``repro-bench`` CLI observability modes.

Runs the real entry point at ``--scale 0`` (the fixed smoke
configuration) and checks the ``--metrics`` JSON payload and the
``--trace`` JSONL stream, including the reconciliation property: the
mirrored registry counters must equal each structure's ``stats().io``
totals exactly.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import EVENT_KINDS

pytestmark = pytest.mark.obs

DISK_FIELDS = ("seeks", "reads", "writes", "blocks_read", "blocks_written",
               "sequential_blocks", "seek_seconds", "transfer_seconds")


def metric_values(payload):
    """Index the registry dump as {(name, structure): value(s)}."""
    return {
        (m["name"], m["labels"].get("structure")): m
        for m in payload["metrics"]
    }


def extract_payload(out):
    """Parse the metrics JSON object embedded in the CLI's stdout."""
    start = out.rfind("{", 0, out.index('"experiment"'))
    payload, _ = json.JSONDecoder().raw_decode(out[start:])
    return payload


class TestSmokeInvocation:
    def test_fig7a_scale0_metrics_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        rc = main(["fig7a", "--scale", "0", "--metrics", "-",
                   "--trace", str(trace_path), "--no-chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scale=smoke" in out

        payload = extract_payload(out)
        assert payload["experiment"] == "experiment 1 (fig 7a)"
        assert payload["scale"] == 0
        names = [s["name"] for s in payload["structures"]]
        assert names == ["virtual mem", "scan", "local overwrite",
                         "geo file", "multiple geo files"]

        # Reconciliation: per-structure mirrored counters == stats().io.
        metrics = metric_values(payload)
        for snapshot in payload["structures"]:
            io = snapshot["io"]
            for field in DISK_FIELDS:
                entry = metrics[(f"disk.{field}", snapshot["name"])]
                assert entry["value"] == io[field], (
                    snapshot["name"], field)

        # The trace file is valid JSONL with known event kinds and
        # strictly increasing sequence numbers.
        lines = trace_path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert all(e["kind"] in EVENT_KINDS for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert payload["trace_event_counts"] == {
            kind: sum(1 for e in events if e["kind"] == kind)
            for kind in payload["trace_event_counts"]
        }

    def test_metrics_written_to_file(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        rc = main(["fig7a", "--scale", "0", "--only", "scan",
                   "--metrics", str(metrics_path), "--no-chart"])
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(metrics_path.read_text())
        assert [s["name"] for s in payload["structures"]] == ["scan"]
        assert any(m["name"] == "events.flush" for m in payload["metrics"])

    def test_plain_run_has_no_observability_output(self, capsys):
        rc = main(["fig7a", "--scale", "0", "--only", "scan", "--no-chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"experiment"' not in out


class TestAqpReport:
    def test_report_aqp_writes_gated_json(self, tmp_path, capsys):
        path = tmp_path / "aqp.json"
        rc = main(["--report", f"aqp={path}"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tiered AQP planner" in out
        assert f"wrote {path}" in out
        report = json.loads(path.read_text())
        gates = report["gates"]
        assert set(gates) >= {"speedup", "hit_rate", "bit_exact", "pass"}
        assert report["bit_exact"]["samples"] is True
        assert report["planner"]["queries"] == report["config"]["queries"]


class TestParser:
    def test_flags_are_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig7a", "--scale", "0",
                                  "--metrics", "-", "--trace", "t.jsonl"])
        assert args.metrics == "-"
        assert args.trace == "t.jsonl"
        assert args.scale == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            main(["fig7a", "--scale", "-1"])

    def test_report_flag_is_repeatable(self):
        parser = build_parser()
        args = parser.parse_args(["--report", "ingest",
                                  "--report", "query=q.json"])
        assert args.reports == ["ingest", "query=q.json"]

    def test_serve_is_a_valid_experiment_choice(self):
        parser = build_parser()
        assert parser.parse_args(["serve"]).experiment == "serve"

    def test_deprecated_flags_are_hidden_from_help(self):
        text = build_parser().format_help()
        assert "--report" in text
        for legacy in ("--perf-smoke", "--query-report", "--pipeline",
                       "--shard-report"):
            assert legacy not in text, legacy

    def test_unknown_report_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["--report", "turbo"])

    def test_aqp_is_a_registered_report_kind(self):
        from repro.cli import REPORT_KINDS, default_report_path
        assert "aqp" in REPORT_KINDS
        assert default_report_path("aqp") == "BENCH_aqp.json"
        parser = build_parser()
        args = parser.parse_args(["--report", "aqp=out.json"])
        assert args.reports == ["aqp=out.json"]

    def test_experiment_required_without_reports(self):
        with pytest.raises(SystemExit):
            main([])
