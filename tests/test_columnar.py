"""Tier-1 tests for the columnar record engine.

The engine's contract has two halves, and this module pins both:

* **byte identity** -- the structured-array codec
  (``encode_many`` / ``decode_many`` / :class:`RecordBatch`) produces
  and consumes exactly the bytes the scalar ``struct`` codec does, for
  every record size, weighted or not (hypothesis property tests);
* **engine identity** -- a ``columnar=True`` structure driven over the
  same stream with the same seed charges bit-exact simulated I/O and
  holds the *same sample* as its scalar twin, across the geometric
  file, the multi-file structure, and all three baselines, on every
  device kind (cost-only, byte-storing, in-memory).

Statistical acceptance (chi-square membership, KS on estimator
outputs) and the query-side surfaces (``sample_batch`` /
:class:`BatchQuery`, zone-map ``query_batch``, checkpoint round trips,
the sharded service, the managed wrapper) ride on top.
"""

from __future__ import annotations

import collections
import io
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from conftest import (
    TEST_BLOCK,
    keyed_records,
    make_geometric_file,
    make_multi_file,
    small_disk_params,
)
from repro.baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from repro.core.buffer import SampleBuffer
from repro.core.checkpoint import load_geometric_file, save_geometric_file
from repro.core.managed import ManagedSample
from repro.core.zonemap import ZoneMapIndex
from repro.estimate.aqp import BatchQuery, SampleQuery
from repro.service import ShardedReservoir
from repro.storage.device import MemoryBlockDevice, SimulatedBlockDevice
from repro.storage.recordbatch import RecordBatch
from repro.storage.records import (
    MIN_RECORD_SIZE,
    Record,
    RecordSchema,
    WeightedRecord,
)
from test_batch_ingest import P_MIN, chi_square_p

# -- helpers -----------------------------------------------------------------


def value_records(n: int, seed: int = 0) -> list[Record]:
    """Records with pseudo-random values (AQP needs a measure column)."""
    rng = random.Random(seed)
    return [Record(key=i, value=rng.gauss(100.0, 15.0), timestamp=float(i))
            for i in range(n)]


def stream_batch(schema: RecordSchema, records: list[Record]) -> RecordBatch:
    return RecordBatch.from_records(schema, records)


def drive_twins(scalar, columnar, records: list[Record],
                chunk: int = 64) -> None:
    """Same stream through both engines via their natural batch paths."""
    schema = RecordSchema(scalar.config.record_size)
    batch = stream_batch(schema, records)
    for start in range(0, len(records), chunk):
        scalar.offer_many(records[start:start + chunk])
        columnar.offer_batch(batch[start:start + chunk])


def sorted_sample_keys(structure) -> list[int]:
    if getattr(structure, "columnar", False):
        return sorted(structure.sample_batch().keys.tolist())
    return sorted(r.key for r in structure.sample())


def assert_twins_identical(scalar, columnar) -> None:
    """Bit-exact I/O and *identical resident sample* between engines.

    ``sample()`` consumes the shared ``random.Random`` stream
    identically on both engines, so its output must match key-for-key.
    ``sample_batch`` draws its pending-eviction victims from the numpy
    generator instead -- a different (equally uniform) draw -- so it is
    checked as the same size over the same resident-plus-pending pool.
    """
    assert scalar.device.stats() == columnar.device.stats()
    if hasattr(scalar.device, "clock"):
        assert scalar.device.clock == columnar.device.clock
    assert scalar.stats().seen == columnar.stats().seen
    scalar_keys = sorted(r.key for r in scalar.sample())
    columnar_keys = sorted(r.key for r in columnar.sample())
    assert scalar_keys == columnar_keys
    batch = columnar.sample_batch()
    assert len(batch) == len(columnar_keys)
    assert len(set(batch.keys.tolist())) == len(batch)


# -- codec byte identity (hypothesis) ----------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
keys_st = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
payload_st = st.binary(max_size=48)


@st.composite
def record_lists(draw):
    n = draw(st.integers(0, 30))
    return [Record(key=draw(keys_st), value=draw(finite),
                   timestamp=draw(finite), payload=draw(payload_st))
            for _ in range(n)]


class TestCodecByteIdentity:
    @given(record_size=st.integers(MIN_RECORD_SIZE, 96),
           records=record_lists())
    @settings(max_examples=60, deadline=None)
    def test_unweighted_round_trip(self, record_size, records):
        """encode_batch bytes == columnar bytes; both decoders agree.

        Payloads longer than the slot's padding are truncated and
        short ones zero-padded by both codecs identically.
        """
        schema = RecordSchema(record_size)
        data = schema.encode_batch(records)
        batch = RecordBatch.from_bytes(schema, data)
        assert batch.to_bytes() == data
        assert schema.encode_many(batch) == data
        assert list(schema.decode_many(data)) == \
            schema.decode_batch(data, len(records))

    @given(record_size=st.integers(MIN_RECORD_SIZE + 8, 96),
           records=record_lists(),
           weight_seed=st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_weighted_round_trip(self, record_size, records, weight_seed):
        schema = RecordSchema(record_size, weighted=True)
        weights = [random.Random(weight_seed + i).uniform(0.0, 10.0)
                   for i in range(len(records))]
        data = schema.encode_batch(records, weights)
        batch = RecordBatch.from_bytes(schema, data)
        assert batch.to_bytes() == data
        decoded = list(schema.decode_many(data))
        assert decoded == schema.decode_batch(data, len(records))
        assert all(isinstance(r, WeightedRecord) for r in decoded)

    @given(records=record_lists())
    @settings(max_examples=40, deadline=None)
    def test_min_record_size_drops_payloads(self, records):
        """The headers-only schema has no payload field at all."""
        schema = RecordSchema(MIN_RECORD_SIZE)
        data = schema.encode_batch(records)
        assert len(data) == MIN_RECORD_SIZE * len(records)
        for got, want in zip(schema.decode_many(data), records):
            assert (got.key, got.value, got.timestamp) == \
                (want.key, want.value, want.timestamp)
            assert got.payload == b""

    @given(keys=st.lists(keys_st, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_from_columns_matches_scalar_codec(self, keys):
        """A batch assembled column-wise encodes byte-identically to
        the scalar codec over the equivalent record objects."""
        schema = RecordSchema(40)
        values = [float(i) for i in range(len(keys))]
        batch = RecordBatch.from_columns(schema, keys, values=values,
                                         timestamps=values)
        records = [Record(key=k, value=v, timestamp=v)
                   for k, v in zip(keys, values)]
        assert batch.to_bytes() == schema.encode_batch(records)

    def test_decode_many_is_zero_copy(self):
        schema = RecordSchema(40)
        data = schema.encode_batch(keyed_records(10))
        batch = schema.decode_many(data)
        assert not batch.array.flags.writeable  # a view of the bytes
        assert batch.array.base is not None


class TestRecordBatchSurface:
    def test_list_compat_shims(self):
        schema = RecordSchema(40)
        records = keyed_records(20)
        batch = RecordBatch.from_records(schema, records)
        assert len(batch) == 20 and bool(batch)
        assert list(batch) == records
        assert batch[3] == records[3]
        assert [r.key for r in batch[5:8]] == [5, 6, 7]
        del batch[15:]
        assert len(batch) == 15
        assert not RecordBatch.empty(schema)

    def test_concat_and_take(self):
        schema = RecordSchema(40)
        a = RecordBatch.from_records(schema, keyed_records(5))
        b = RecordBatch.from_records(schema, keyed_records(3))
        merged = RecordBatch.concat(schema, [a, b])
        assert merged.keys.tolist() == [0, 1, 2, 3, 4, 0, 1, 2]
        assert merged.take([7, 0]).keys.tolist() == [2, 0]


# -- buffer parity -----------------------------------------------------------


class TestBufferParity:
    def test_columnar_buffer_matches_object_buffer(self):
        """Same seed, same stream: identical drains either way."""
        schema = RecordSchema(40)
        records = keyed_records(400)
        batch = stream_batch(schema, records)
        scalar = SampleBuffer(50, random.Random(7))
        columnar = SampleBuffer(50, random.Random(7), schema=schema)
        scalar.extend(records[:50])
        columnar.extend_batch(batch[:50])
        drained_s, _, count_s = scalar.drain()
        drained_c, _, count_c = columnar.drain()
        assert count_s == count_c == 50
        assert [r.key for r in drained_s] == drained_c.keys.tolist()
        i = j = 50
        while i < len(records):
            i += scalar.absorb_many(records, 2000, start=i)
            j += columnar.absorb_batch(batch, 2000, start=j)
            assert i == j
            if scalar.is_full:
                drained_s, _, _ = scalar.drain()
                drained_c, _, _ = columnar.drain()
                assert [r.key for r in drained_s] == \
                    drained_c.keys.tolist()

    def test_pending_view_sees_live_rows(self):
        schema = RecordSchema(40)
        buffer = SampleBuffer(50, random.Random(0), schema=schema)
        buffer.extend_batch(stream_batch(schema, keyed_records(20)))
        view = buffer.pending_view()
        assert view["key"].tolist() == list(range(20))


# -- engine identity: bit-exact I/O and samples ------------------------------


def make_device(kind: str, blocks: int):
    if kind == "memory":
        return MemoryBlockDevice(blocks, TEST_BLOCK)
    return SimulatedBlockDevice(blocks, small_disk_params(),
                                retain_data=(kind == "sim-retain"))


DEVICE_KINDS = ["memory", "sim", "sim-retain"]

BASELINES = [VirtualMemoryReservoir, ScanReservoir, LocalOverwriteReservoir]


class TestEngineIdentity:
    @pytest.mark.parametrize("kind", DEVICE_KINDS)
    def test_geometric_file_twins(self, kind):
        scalar, columnar = [
            self._make_gf(kind, columnar=flag) for flag in (False, True)
        ]
        drive_twins(scalar, columnar, keyed_records(3000))
        assert_twins_identical(scalar, columnar)

    @pytest.mark.parametrize("kind", DEVICE_KINDS)
    def test_multi_file_twins(self, kind):
        scalar, columnar = [
            self._make_multi(kind, columnar=flag) for flag in (False, True)
        ]
        drive_twins(scalar, columnar, keyed_records(3000))
        assert_twins_identical(scalar, columnar)

    @pytest.mark.parametrize("kind", DEVICE_KINDS)
    @pytest.mark.parametrize("cls", BASELINES)
    def test_baseline_twins(self, cls, kind):
        scalar, columnar = [
            self._make_baseline(cls, kind, columnar=flag)
            for flag in (False, True)
        ]
        records = keyed_records(1500)
        for r in records:
            scalar.offer(r)
            columnar.offer(r)
        assert_twins_identical(scalar, columnar)

    @pytest.mark.parametrize("cls", BASELINES)
    def test_baseline_offer_batch_fills_sample(self, cls):
        columnar = self._make_baseline(cls, "sim", columnar=True)
        schema = RecordSchema(columnar.config.record_size)
        batch = stream_batch(schema, keyed_records(1500))
        for start in range(0, 1500, 128):
            columnar.offer_batch(batch[start:start + 128])
        got = columnar.sample_batch()
        assert len(got) == columnar.capacity
        assert set(got.keys.tolist()) <= set(range(1500))

    def test_scalar_offer_loop_matches_on_columnar_file(self):
        """offer() on a columnar file stays bit-exact with scalar."""
        scalar = self._make_gf("sim", columnar=False)
        columnar = self._make_gf("sim", columnar=True)
        for r in keyed_records(2000):
            scalar.offer(r)
            columnar.offer(r)
        assert_twins_identical(scalar, columnar)

    def _make_gf(self, kind, *, columnar):
        from repro.core.geometric_file import (
            GeometricFile,
            GeometricFileConfig,
        )

        config = GeometricFileConfig(
            capacity=800, buffer_capacity=100, record_size=40,
            beta_records=10, retain_records=True, admission="uniform",
            columnar=columnar,
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        return GeometricFile(make_device(kind, blocks), config, seed=5)

    def _make_multi(self, kind, *, columnar):
        from repro.core.multi import MultiFileConfig, MultipleGeometricFiles

        config = MultiFileConfig(
            capacity=800, buffer_capacity=100, record_size=40,
            beta_records=10, retain_records=True, admission="uniform",
            alpha_prime=0.8, columnar=columnar,
        )
        blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
        return MultipleGeometricFiles(make_device(kind, blocks), config,
                                      seed=5)

    def _make_baseline(self, cls, kind, *, columnar):
        config = DiskReservoirConfig(
            capacity=600, buffer_capacity=60, record_size=40,
            pool_blocks=4, retain_records=True, admission="uniform",
            columnar=columnar,
        )
        blocks = cls.required_blocks(config, TEST_BLOCK)
        return cls(make_device(kind, blocks), config, seed=5)


# -- segment read-back -------------------------------------------------------


class TestSegmentReadback:
    def test_flushed_segments_decode_to_ledger_slices(self):
        """Bytes on a retaining device decode back to the exact rows
        the newest ledger holds, level by level."""
        from repro.core.geometric_file import (
            GeometricFile,
            GeometricFileConfig,
        )

        config = GeometricFileConfig(
            capacity=600, buffer_capacity=100, record_size=40,
            beta_records=10, retain_records=True, admission="always",
            columnar=True,
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params(),
                                      retain_data=True)
        gf = GeometricFile(device, config, seed=3)
        schema = RecordSchema(40)
        batch = stream_batch(schema, keyed_records(1200))
        for start in range(0, 1200, 100):
            gf.offer_batch(batch[start:start + 100])
        ledger = gf.subsamples[0]  # created by the very last flush
        assert ledger.first_level == 0 and ledger.records is not None
        layout = gf._layout
        offset = 0
        for level, (size, slot) in enumerate(
                zip(ledger.segment_sizes, ledger.slots)):
            n_blocks = schema.blocks_for_records(size, TEST_BLOCK)
            data = device.read_blocks(layout.slot_address(level, slot),
                                      n_blocks)
            on_disk = schema.decode_many(data, size)
            want = ledger.records[offset:offset + size]
            assert on_disk.keys.tolist() == want.keys.tolist()
            assert np.array_equal(on_disk.values, want.values)
            offset += size


# -- statistical acceptance --------------------------------------------------


class TestDistributionalIdentity:
    def test_columnar_membership_is_uniform(self):
        """Chi-square: P[record j resident] = N/stream on the columnar
        engine, against the exact uniform-reservoir expectation."""
        trials, stream = 80, 900
        counts = collections.Counter()
        capacity = None
        schema = RecordSchema(40)
        batch = stream_batch(schema, keyed_records(stream))
        for t in range(trials):
            gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                     seed=t, columnar=True)
            capacity = gf.capacity
            for start in range(0, stream, 128):
                gf.offer_batch(batch[start:start + 128])
            counts.update(gf.sample_batch().keys.tolist())
        expected = {j: trials * capacity / stream for j in range(stream)}
        assert chi_square_p(counts, expected) > P_MIN

    def test_estimator_outputs_match_across_seeds(self):
        """KS: AVG estimates from columnar samples are distributed as
        AVG estimates from scalar samples of the same stream."""
        records = value_records(900, seed=42)
        schema = RecordSchema(40)
        batch = stream_batch(schema, records)
        scalar_avgs, columnar_avgs = [], []
        for t in range(40):
            scalar = make_geometric_file(capacity=300, buffer_capacity=30,
                                         seed=t)
            columnar = make_geometric_file(capacity=300, buffer_capacity=30,
                                           seed=t + 10 ** 6, columnar=True)
            for start in range(0, 900, 128):
                scalar.offer_many(records[start:start + 128])
                columnar.offer_batch(batch[start:start + 128])
            scalar_avgs.append(
                SampleQuery(scalar.sample()).avg().value)
            columnar_avgs.append(
                BatchQuery(columnar.sample_batch()).avg().value)
        p = scipy_stats.ks_2samp(scalar_avgs, columnar_avgs).pvalue
        assert p > P_MIN

    def test_batch_query_agrees_with_sample_query(self):
        """On the SAME sample the two query engines agree to float
        reassociation."""
        records = value_records(600, seed=9)
        schema = RecordSchema(40)
        gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                 columnar=True)
        batch_stream = stream_batch(schema, records)
        for start in range(0, 600, 100):
            gf.offer_batch(batch_stream[start:start + 100])
        seen = gf.stats().seen
        batch = gf.sample_batch()
        rows = batch.to_records()
        bq = BatchQuery(batch, population_size=seen)
        sq = SampleQuery(rows, population_size=seen)
        assert bq.avg().value == pytest.approx(sq.avg().value)
        assert bq.sum().value == pytest.approx(sq.sum().value)
        lo, hi = 90.0, 110.0
        assert (bq.filter("value", lo, hi).avg().value
                == pytest.approx(
                    sq.filter(lambda r: lo <= r.value <= hi).avg().value))
        assert (bq.count(bq.mask("value", low=hi)).value
                == pytest.approx(
                    sq.count(lambda r: r.value >= hi).value))


# -- zone map ----------------------------------------------------------------


class TestZoneMapBatch:
    def _file(self):
        gf = make_geometric_file(capacity=400, buffer_capacity=40,
                                 columnar=True)
        schema = RecordSchema(40)
        batch = stream_batch(schema, keyed_records(1200))
        for start in range(0, 1200, 100):
            gf.offer_batch(batch[start:start + 100])
        return gf

    def test_query_batch_matches_iterator_query(self):
        gf = self._file()
        index = ZoneMapIndex(gf, field="timestamp")
        low, high = 1000.0, 1200.0
        want = sorted(r.key for r in index.query(low, high))
        iter_stats = index.stats()
        got = index.query_batch(low, high)
        batch_stats = index.stats()
        assert sorted(got.keys.tolist()) == want
        assert batch_stats == iter_stats

    def test_query_batch_requires_columnar_file(self):
        gf = make_geometric_file(capacity=200, buffer_capacity=20)
        for r in keyed_records(300):
            gf.offer(r)
        index = ZoneMapIndex(gf, field="value")
        with pytest.raises(TypeError):
            index.query_batch(0.0, 10.0)


# -- checkpoint round trip ---------------------------------------------------


class TestCheckpointColumnar:
    def test_round_trip_restores_columnar_ledgers(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                 columnar=True)
        schema = RecordSchema(40)
        batch = stream_batch(schema, keyed_records(900))
        for start in range(0, 900, 90):
            gf.offer_batch(batch[start:start + 90])
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        sink.seek(0)
        blocks = gf.device.n_blocks
        restored = load_geometric_file(
            sink, SimulatedBlockDevice(blocks, small_disk_params()))
        assert restored.columnar
        assert sorted_sample_keys(restored) == sorted_sample_keys(gf)
        # Bit-identical continuation: the restored file and the
        # original make the same decisions over the same future stream.
        more = stream_batch(schema, keyed_records(300))
        gf.offer_batch(more)
        restored.offer_batch(more)
        assert sorted_sample_keys(restored) == sorted_sample_keys(gf)


# -- managed wrapper ---------------------------------------------------------


class TestManagedColumnar:
    def test_offer_batch_checkpoints_and_restores(self, tmp_path):
        from repro.core.geometric_file import (
            GeometricFile,
            GeometricFileConfig,
        )

        config = GeometricFileConfig(
            capacity=300, buffer_capacity=30, record_size=40,
            beta_records=4, retain_records=True, admission="uniform",
            columnar=True,
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)

        def device_factory():
            return SimulatedBlockDevice(blocks, small_disk_params())

        path = tmp_path / "sample.json"
        managed = ManagedSample(path, device_factory, config,
                                checkpoint_every=1)
        schema = RecordSchema(40)
        batch = stream_batch(schema, keyed_records(900))
        for start in range(0, 900, 90):
            managed.offer_batch(batch[start:start + 90])
        assert path.exists()
        assert managed.flushes > 0
        reopened = ManagedSample.restore(path, device_factory)
        assert reopened.columnar
        assert sorted_sample_keys(reopened.structure) == \
            sorted_sample_keys(managed.structure)


# -- sharded service ---------------------------------------------------------


class TestShardedBatchQueries:
    def _config(self):
        from repro.core.geometric_file import GeometricFileConfig

        return GeometricFileConfig(
            capacity=200, buffer_capacity=20, record_size=32,
            beta_records=4, retain_records=True, admission="uniform",
            columnar=True,
        )

    def test_snapshot_batch_and_query_batch(self, tmp_path):
        records = value_records(4000, seed=1)
        with ShardedReservoir(tmp_path, self._config(), shards=4,
                              pool="inline", seed=0) as service:
            service.offer_batch(records)
            batch, seen = service.snapshot_batch(150)
            assert seen == 4000
            assert len(batch) == 150
            assert set(batch.keys.tolist()) <= set(range(4000))
            query = service.query_batch(150)
            estimate = query.avg()
            true_mean = float(np.mean([r.value for r in records]))
            assert abs(estimate.value - true_mean) <= \
                5 * estimate.standard_error + 1e-9
            total = query.count().value
            assert total == pytest.approx(4000, rel=0.25)

    def test_sample_batch_multiset_matches_scalar_merge(self, tmp_path):
        """Same merge RNG state, same k: the columnar merge returns the
        same record multiset as the scalar merge."""
        records = keyed_records(3000)
        with ShardedReservoir(tmp_path, self._config(), shards=4,
                              pool="inline", seed=7) as service:
            service.offer_batch(records)
            scalar_keys = sorted(r.key for r in service.sample(120))
            batch_keys = sorted(
                service.sample_batch(120).keys.tolist())
            assert len(batch_keys) == 120
            assert set(batch_keys) <= set(range(3000))
            assert len(scalar_keys) == 120
