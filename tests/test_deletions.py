"""Tests for random-pairing sampling under deletions (Section 10)."""

import collections
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import RandomPairingReservoir
from repro.storage.records import Record


def rec(i):
    return Record(key=i, value=float(i))


class TestInsertOnly:
    def test_degenerates_to_reservoir(self):
        rp = RandomPairingReservoir(10, random.Random(0))
        for i in range(100):
            rp.insert(rec(i))
        assert len(rp) == 10
        assert rp.population == 100
        rp.check_invariants()

    def test_insert_only_uniformity(self):
        trials, capacity, stream = 2000, 5, 40
        counts = collections.Counter()
        for t in range(trials):
            rp = RandomPairingReservoir(capacity, random.Random(t))
            for i in range(stream):
                rp.insert(rec(i))
            counts.update(r.key for r in rp)
        expected = trials * capacity / stream
        sigma = math.sqrt(trials * (capacity / stream))
        for key in range(stream):
            assert abs(counts[key] - expected) < 5 * sigma, key


class TestDeletions:
    def test_delete_resident_record(self):
        rp = RandomPairingReservoir(10, random.Random(0),
                                    track_population=True)
        for i in range(10):
            rp.insert(rec(i))
        assert rp.delete(3) is True
        assert 3 not in rp
        assert rp.c_in == 1
        rp.check_invariants()

    def test_delete_nonresident_record(self):
        rp = RandomPairingReservoir(5, random.Random(0),
                                    track_population=True)
        for i in range(100):
            rp.insert(rec(i))
        non_resident = next(k for k in range(100) if k not in rp)
        assert rp.delete(non_resident) is False
        assert rp.c_out == 1
        rp.check_invariants()

    def test_compensation_refills_the_sample(self):
        rp = RandomPairingReservoir(10, random.Random(1),
                                    track_population=True)
        for i in range(50):
            rp.insert(rec(i))
        resident = list(rp)[:4]
        for r in resident:
            rp.delete(r.key)
        assert len(rp) == 6
        for i in range(50, 80):
            rp.insert(rec(i))
        assert len(rp) == 10  # compensations restored full size
        assert rp.outstanding_deletions == 0
        rp.check_invariants()

    def test_delete_unknown_key_raises_when_tracking(self):
        rp = RandomPairingReservoir(5, random.Random(0),
                                    track_population=True)
        rp.insert(rec(0))
        with pytest.raises(ValueError):
            rp.delete(99)

    def test_delete_from_empty_population(self):
        rp = RandomPairingReservoir(5)
        with pytest.raises(ValueError):
            rp.delete(0)

    def test_duplicate_insert_raises_when_tracking(self):
        rp = RandomPairingReservoir(5, track_population=True)
        rp.insert(rec(0))
        with pytest.raises(ValueError):
            rp.insert(rec(0))

    def test_apply_batches(self):
        rp = RandomPairingReservoir(5, random.Random(0),
                                    track_population=True)
        rp.apply([("insert", rec(i)) for i in range(10)])
        rp.apply([("delete", 0), ("insert", rec(10))])
        assert rp.population == 10
        with pytest.raises(ValueError):
            rp.apply([("upsert", rec(11))])


class TestUniformityUnderChurn:
    def test_uniform_over_survivors(self):
        """After a mixed insert/delete workload, every *live* record is
        resident with probability |S| / population."""
        trials, capacity = 2500, 6
        counts = collections.Counter()
        sample_sizes = []
        live_keys = None
        for t in range(trials):
            rng = random.Random(t)
            rp = RandomPairingReservoir(capacity, rng,
                                        track_population=True)
            # Insert 0..39, delete every multiple of 3, insert 40..59.
            for i in range(40):
                rp.insert(rec(i))
            for i in range(0, 40, 3):
                rp.delete(i)
            for i in range(40, 60):
                rp.insert(rec(i))
            rp.check_invariants()
            live_keys = sorted(rp._live_keys)
            counts.update(r.key for r in rp)
            sample_sizes.append(len(rp))
        population = len(live_keys)
        mean_size = sum(sample_sizes) / trials
        expected = trials * mean_size / population
        sigma = math.sqrt(trials * (mean_size / population))
        for key in live_keys:
            assert abs(counts[key] - expected) < 5 * sigma, key
        # Deleted keys never appear.
        for key in range(0, 40, 3):
            assert counts[key] == 0

    def test_heavy_churn_keeps_invariants(self):
        rng = random.Random(9)
        rp = RandomPairingReservoir(20, rng, track_population=True)
        next_key = 0
        live = []
        for step in range(5000):
            if live and rng.random() < 0.45:
                victim = live.pop(rng.randrange(len(live)))
                rp.delete(victim)
            else:
                rp.insert(rec(next_key))
                live.append(next_key)
                next_key += 1
            if step % 500 == 0:
                rp.check_invariants()
        rp.check_invariants()
        assert rp.population == len(live)


@given(seed=st.integers(0, 10 ** 6), steps=st.integers(1, 300),
       capacity=st.integers(1, 15))
@settings(max_examples=100, deadline=None)
def test_invariants_property(seed, steps, capacity):
    """Random workloads never violate the structural invariants."""
    rng = random.Random(seed)
    rp = RandomPairingReservoir(capacity, rng, track_population=True)
    live = []
    next_key = 0
    for _ in range(steps):
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            rp.delete(victim)
        else:
            rp.insert(rec(next_key))
            live.append(next_key)
            next_key += 1
        rp.check_invariants()
    assert rp.population == len(live)
    assert {r.key for r in rp} <= set(live)
