"""Unit tests for the block devices."""

import os

import pytest

from repro.storage.device import (
    BlockDevice,
    FileBlockDevice,
    MemoryBlockDevice,
    SimulatedBlockDevice,
    read_discard,
    write_zeros,
)
from repro.storage.disk_model import DiskModel, DiskParameters


class TestMemoryBlockDevice:
    def test_round_trip(self):
        dev = MemoryBlockDevice(8, block_size=64)
        payload = bytes(range(64)) * 2
        dev.write_blocks(3, payload)
        assert dev.read_blocks(3, 2) == payload

    def test_fresh_blocks_read_as_zeros(self):
        dev = MemoryBlockDevice(4, block_size=32)
        assert dev.read_blocks(0, 1) == b"\x00" * 32

    def test_rejects_partial_block_write(self):
        dev = MemoryBlockDevice(4, block_size=32)
        with pytest.raises(ValueError):
            dev.write_blocks(0, b"abc")

    def test_rejects_out_of_range(self):
        dev = MemoryBlockDevice(4, block_size=32)
        with pytest.raises(ValueError):
            dev.read_blocks(3, 2)
        with pytest.raises(ValueError):
            dev.write_blocks(4, b"\x00" * 32)

    def test_rejects_empty_device(self):
        with pytest.raises(ValueError):
            MemoryBlockDevice(0)

    def test_satisfies_protocol(self):
        assert isinstance(MemoryBlockDevice(1), BlockDevice)


class TestSimulatedBlockDevice:
    def test_charges_the_model(self):
        dev = SimulatedBlockDevice(16, DiskParameters(block_size=1024))
        dev.write_blocks(0, b"\x00" * 2048)
        dev.read_blocks(5, 1)
        assert dev.model.stats.seeks == 2
        assert dev.model.stats.blocks_written == 2
        assert dev.clock > 0

    def test_without_retention_reads_return_zeros(self):
        dev = SimulatedBlockDevice(4, DiskParameters(block_size=1024))
        dev.write_blocks(0, b"\xff" * 1024)
        assert dev.read_blocks(0, 1) == b"\x00" * 1024

    def test_with_retention_round_trips(self):
        dev = SimulatedBlockDevice(4, DiskParameters(block_size=1024),
                                   retain_data=True)
        dev.write_blocks(1, b"\xab" * 1024)
        assert dev.read_blocks(1, 1) == b"\xab" * 1024

    def test_shared_model_accumulates_across_devices(self):
        model = DiskModel(DiskParameters(block_size=1024))
        a = SimulatedBlockDevice(4, model=model)
        b = SimulatedBlockDevice(4, model=model)
        a.write_blocks(0, b"\x00" * 1024)
        b.write_blocks(0, b"\x00" * 1024)
        assert model.stats.writes == 2

    def test_params_and_model_are_mutually_exclusive(self):
        model = DiskModel()
        with pytest.raises(ValueError):
            SimulatedBlockDevice(4, DiskParameters(), model=model)

    def test_range_checks(self):
        dev = SimulatedBlockDevice(4, DiskParameters(block_size=1024))
        with pytest.raises(ValueError):
            dev.read_blocks(4, 1)

    def test_charge_write_fast_path(self):
        dev = SimulatedBlockDevice(8, DiskParameters(block_size=1024))
        assert dev.charge_write(0, 8) is True
        assert dev.model.stats.blocks_written == 8

    def test_charge_write_declines_with_retention(self):
        dev = SimulatedBlockDevice(8, DiskParameters(block_size=1024),
                                   retain_data=True)
        assert dev.charge_write(0, 8) is False

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedBlockDevice(1), BlockDevice)


class TestWriteZerosHelper:
    def test_simulated_fast_path(self):
        dev = SimulatedBlockDevice(1000, DiskParameters(block_size=1024))
        write_zeros(dev, 0, 1000)
        assert dev.model.stats.blocks_written == 1000
        assert dev.model.stats.seeks == 1  # one contiguous burst

    def test_memory_device_really_zeroes(self):
        dev = MemoryBlockDevice(4, block_size=32)
        dev.write_blocks(1, b"\xff" * 32)
        write_zeros(dev, 0, 4)
        assert dev.read_blocks(1, 1) == b"\x00" * 32

    def test_retaining_simulated_device_zeroes_too(self):
        dev = SimulatedBlockDevice(4, DiskParameters(block_size=1024),
                                   retain_data=True)
        dev.write_blocks(0, b"\xff" * 1024)
        write_zeros(dev, 0, 1)
        assert dev.read_blocks(0, 1) == b"\x00" * 1024

    def test_read_discard_charges(self):
        dev = SimulatedBlockDevice(100, DiskParameters(block_size=1024))
        read_discard(dev, 0, 100)
        assert dev.model.stats.blocks_read == 100


class TestFileBlockDevice:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "dev.bin"
        with FileBlockDevice(path, 8, block_size=64) as dev:
            dev.write_blocks(2, b"\x11" * 128)
            assert dev.read_blocks(2, 2) == b"\x11" * 128

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "dev.bin"
        with FileBlockDevice(path, 8, block_size=64) as dev:
            dev.write_blocks(0, b"\x42" * 64)
            dev.sync()
        with FileBlockDevice(path, 8, block_size=64) as dev:
            assert dev.read_blocks(0, 1) == b"\x42" * 64

    def test_file_sized_on_creation(self, tmp_path):
        path = tmp_path / "dev.bin"
        with FileBlockDevice(path, 10, block_size=128):
            pass
        assert os.path.getsize(path) == 10 * 128

    def test_unwritten_blocks_read_as_zeros(self, tmp_path):
        with FileBlockDevice(tmp_path / "d.bin", 4, block_size=64) as dev:
            assert dev.read_blocks(3, 1) == b"\x00" * 64

    def test_range_checks(self, tmp_path):
        with FileBlockDevice(tmp_path / "d.bin", 4, block_size=64) as dev:
            with pytest.raises(ValueError):
                dev.write_blocks(3, b"\x00" * 128)

    def test_close_is_idempotent(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "d.bin", 4, block_size=64)
        dev.close()
        dev.close()

    def test_satisfies_protocol(self, tmp_path):
        with FileBlockDevice(tmp_path / "d.bin", 1) as dev:
            assert isinstance(dev, BlockDevice)
