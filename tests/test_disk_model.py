"""Unit tests for the analytical disk model."""

import pytest

from repro.storage.disk_model import DiskModel, DiskParameters, DiskStats


class TestDiskParameters:
    def test_defaults_match_the_paper(self):
        p = DiskParameters()
        assert p.seek_time == pytest.approx(0.010)
        assert p.transfer_rate == 40 * 1024 * 1024
        assert p.block_size == 32 * 1024

    def test_block_transfer_time(self):
        p = DiskParameters(transfer_rate=1024, block_size=512)
        assert p.block_transfer_time == pytest.approx(0.5)

    @pytest.mark.parametrize("field,value", [
        ("seek_time", -0.001),
        ("transfer_rate", 0),
        ("transfer_rate", -5),
        ("block_size", 0),
        ("settle_time", -1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            DiskParameters(**kwargs)


class TestDiskModelAccounting:
    def setup_method(self):
        self.params = DiskParameters(seek_time=0.01,
                                     transfer_rate=1024 * 1024,
                                     block_size=1024)
        self.model = DiskModel(self.params)

    def test_first_access_pays_a_seek(self):
        elapsed = self.model.read(0, 1)
        assert self.model.stats.seeks == 1
        assert elapsed == pytest.approx(0.01 + 1024 / (1024 * 1024))

    def test_sequential_continuation_is_free_of_seeks(self):
        self.model.write(0, 4)
        self.model.write(4, 4)  # continues where the head stopped
        assert self.model.stats.seeks == 1
        assert self.model.stats.sequential_blocks == 4

    def test_non_contiguous_access_seeks_again(self):
        self.model.write(0, 4)
        self.model.write(5, 1)
        assert self.model.stats.seeks == 2

    def test_backward_access_seeks(self):
        self.model.write(10, 2)
        self.model.write(0, 2)
        assert self.model.stats.seeks == 2

    def test_read_after_write_at_head_is_sequential(self):
        self.model.write(0, 3)
        self.model.read(3, 2)
        assert self.model.stats.seeks == 1

    def test_clock_accumulates(self):
        self.model.write(0, 1)
        self.model.write(100, 1)
        expected = 2 * 0.01 + 2 * (1024 / (1024 * 1024))
        assert self.model.clock == pytest.approx(expected)

    def test_head_position_tracks_end_of_access(self):
        assert self.model.head_position is None
        self.model.read(7, 3)
        assert self.model.head_position == 10

    def test_read_write_counters(self):
        self.model.read(0, 2)
        self.model.write(2, 3)
        stats = self.model.stats
        assert stats.reads == 1 and stats.writes == 1
        assert stats.blocks_read == 2 and stats.blocks_written == 3

    def test_charge_seek_forgets_head(self):
        self.model.write(0, 1)
        self.model.charge_seek()
        self.model.write(1, 1)  # would have been sequential
        assert self.model.stats.seeks == 3

    def test_idle_advances_clock_without_io(self):
        self.model.idle(1.5)
        assert self.model.clock == pytest.approx(1.5)
        assert self.model.stats.seeks == 0

    def test_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            self.model.idle(-1.0)

    def test_reset_clears_everything(self):
        self.model.write(0, 5)
        self.model.reset()
        assert self.model.clock == 0.0
        assert self.model.stats.seeks == 0
        assert self.model.head_position is None

    @pytest.mark.parametrize("block,n", [(-1, 1), (0, 0), (3, -2)])
    def test_rejects_bad_access(self, block, n):
        with pytest.raises(ValueError):
            self.model.access(block, n, write=False)

    def test_settle_time_charged_per_access(self):
        model = DiskModel(DiskParameters(seek_time=0.0, settle_time=0.002,
                                         transfer_rate=1024 * 1024,
                                         block_size=1024))
        model.write(0, 1)
        model.write(1, 1)
        assert model.clock == pytest.approx(2 * 0.002
                                            + 2 * 1024 / (1024 * 1024))


class TestDiskStats:
    def test_sequential_ratio_empty_is_one(self):
        assert DiskStats().sequential_ratio == 1.0

    def test_sequential_ratio(self):
        model = DiskModel(DiskParameters(block_size=1024))
        model.write(0, 2)
        model.write(2, 2)
        # 4 blocks total, 2 of them sequential continuations
        assert model.stats.sequential_ratio == pytest.approx(0.5)

    def test_random_io_fraction_empty_is_zero(self):
        assert DiskStats().random_io_fraction == 0.0

    def test_random_io_fraction(self):
        params = DiskParameters(seek_time=1.0, transfer_rate=1024,
                                block_size=1024)
        model = DiskModel(params)
        model.write(0, 1)  # 1s seek + 1s transfer
        assert model.stats.random_io_fraction == pytest.approx(0.5)

    def test_snapshot_is_independent(self):
        model = DiskModel()
        model.write(0, 1)
        snap = model.stats.snapshot()
        model.write(100, 1)
        assert snap.seeks == 1
        assert model.stats.seeks == 2

    def test_total_blocks(self):
        model = DiskModel(DiskParameters(block_size=1024))
        model.read(0, 3)
        model.write(3, 2)
        assert model.stats.total_blocks == 5
