"""Edge-case tests for branches the main suites do not reach."""

import random

import pytest

from conftest import TEST_BLOCK, make_geometric_file, small_disk_params
from repro.bench.report import _format_time
from repro.core.buffer import SampleBuffer
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.estimate import Estimate, horvitz_thompson_sum
from repro.storage.device import (
    FileBlockDevice,
    MemoryBlockDevice,
    read_discard,
    write_zeros,
)
from repro.storage.records import Record


class TestDeviceHelpersOnByteBackedDevices:
    def test_write_zeros_chunks_over_large_ranges(self, tmp_path):
        with FileBlockDevice(tmp_path / "d.bin", 600, block_size=64) as dev:
            dev.write_blocks(500, b"\xff" * 64)
            write_zeros(dev, 0, 600)  # > one 256-block chunk
            assert dev.read_blocks(500, 1) == b"\x00" * 64

    def test_read_discard_on_memory_device(self):
        dev = MemoryBlockDevice(600, block_size=64)
        read_discard(dev, 0, 600)  # must not raise or return anything


class TestEstimateEdges:
    def test_ht_single_item_standard_error_fallback(self):
        est = horvitz_thompson_sum(
            [(Record(key=0, value=5.0), 1.0)],
            total_weight=10.0, sample_capacity=2,
        )
        assert est.value == pytest.approx(25.0)
        assert est.standard_error == pytest.approx(abs(est.value))

    def test_ht_empty_sample(self):
        est = horvitz_thompson_sum([], total_weight=10.0,
                                   sample_capacity=2)
        assert est.value == 0.0 and est.standard_error == 0.0

    def test_ht_predicate_zeroes_non_matching(self):
        items = [(Record(key=i, value=1.0), 1.0) for i in range(4)]
        est = horvitz_thompson_sum(items, total_weight=4.0,
                                   sample_capacity=4,
                                   predicate=lambda r: r.key == 0)
        assert est.value == pytest.approx(1.0)

    def test_estimate_interval_width_scales_with_z(self):
        est = Estimate(10.0, 1.0)
        assert (est.interval(0.99).half_width
                > est.interval(0.90).half_width)


class TestReportFormatting:
    def test_format_time_units(self):
        assert _format_time(30.0) == "30.0s"
        assert _format_time(90.0) == "1.5m"
        assert _format_time(7200.0) == "2.0h"


class TestBufferEdges:
    def test_drain_empty_buffer(self):
        buf = SampleBuffer(5, random.Random(0))
        records, weights, count = buf.drain()
        assert records == [] and weights is None and count == 0

    def test_count_only_drain_empty(self):
        buf = SampleBuffer(5, random.Random(0), retain_records=False)
        records, weights, count = buf.drain()
        assert records is None and count == 0


class TestGeometricFileEdges:
    def test_minimal_viable_configuration(self):
        """The smallest config the validators accept must still work."""
        gf = make_geometric_file(capacity=8, buffer_capacity=2,
                                 beta_records=1)
        for i in range(50):
            gf.offer(Record(key=i))
        gf.check_invariants()
        assert len(gf.sample()) == 8

    def test_offer_after_exact_capacity_boundary(self):
        gf = make_geometric_file(capacity=100, buffer_capacity=10)
        for i in range(100):
            gf.offer(Record(key=i))
        assert not gf.in_startup
        gf.offer(Record(key=100))
        gf.check_invariants()

    def test_clock_zero_on_unmodelled_device(self, tmp_path):
        config = GeometricFileConfig(capacity=100, buffer_capacity=10,
                                     record_size=40, beta_records=2,
                                     retain_records=True)
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        with FileBlockDevice(tmp_path / "g.bin", blocks,
                             TEST_BLOCK) as device:
            gf = GeometricFile(device, config)
            assert gf.clock == 0.0

    def test_huge_ratio_ladder_operations_are_fast(self):
        """The head-index refactor: a deep ladder (ratio 1000) must
        handle a steady flush without quadratic list shuffling."""
        import time

        gf = make_geometric_file(capacity=100_000, buffer_capacity=100,
                                 retain_records=False, admission="always",
                                 beta_records=4)
        gf.ingest(100_000)
        start = time.monotonic()
        gf.ingest(2_000)  # ~20 steady flushes over a ~780-rung ladder
        assert time.monotonic() - start < 5.0
        gf.check_invariants()
