"""Tests for the estimation layer (CLT, bounds, estimators, AQP)."""

import math
import random
import statistics

import pytest
import scipy.stats

from repro.estimate import (
    ConfidenceInterval,
    SampleQuery,
    achieved_confidence,
    chebyshev_bound,
    chebyshev_sample_size,
    chernoff_bound_binomial,
    chernoff_sample_size_binomial,
    estimate_avg,
    estimate_count,
    estimate_mean,
    estimate_sum,
    hoeffding_bound,
    hoeffding_sample_size,
    horvitz_thompson_sum,
    mean_confidence_interval,
    normal_cdf,
    normal_quantile,
    relative_error,
    required_sample_size,
)
from repro.storage.records import Record


class TestNormalFunctions:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.1, 0.25, 0.5, 0.75,
                                   0.9, 0.975, 0.999, 0.9999999])
    def test_quantile_matches_scipy(self, p):
        assert normal_quantile(p) == pytest.approx(
            scipy.stats.norm.ppf(p), abs=1e-6
        )

    @pytest.mark.parametrize("x", [-4.0, -1.0, 0.0, 0.5, 2.0, 6.0])
    def test_cdf_matches_scipy(self, x):
        assert normal_cdf(x) == pytest.approx(scipy.stats.norm.cdf(x),
                                              abs=1e-12)

    def test_quantile_symmetry(self):
        assert normal_quantile(0.25) == pytest.approx(
            -normal_quantile(0.75), abs=1e-9
        )

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_quantile_domain(self, p):
        with pytest.raises(ValueError):
            normal_quantile(p)


class TestSection2SampleSizes:
    def test_student_age_example(self):
        """~100 students suffice for 2.5% error at ~98% confidence."""
        n = required_sample_size(std=2.0, mean=20.0, relative_error=0.025,
                                 confidence=0.98)
        assert 80 <= n <= 100

    def test_net_worth_example(self):
        """'More than 12 million samples to achieve the same
        statistical guarantees as in the first case.'

        "The same guarantees" are what 100 students actually deliver:
        2.5% error at confidence 2*Phi(2.5) - 1 ~ 98.76%, i.e. z = 2.5.
        """
        confidence = achieved_confidence(std=2.0, mean=20.0,
                                         relative_error=0.025,
                                         sample_size=100)
        assert confidence == pytest.approx(0.9876, abs=0.001)
        n = required_sample_size(std=5_000_000.0, mean=140_000.0,
                                 relative_error=0.025,
                                 confidence=confidence)
        assert n > 12_000_000
        assert n < 14_000_000

    def test_quadratic_growth_in_cv(self):
        """Section 2: required size grows as the square of the std."""
        base = required_sample_size(1.0, 10.0, 0.01, 0.95)
        quadrupled = required_sample_size(2.0, 10.0, 0.01, 0.95)
        assert quadrupled == pytest.approx(4 * base, rel=0.01)

    def test_achieved_confidence_inverts(self):
        n = required_sample_size(2.0, 20.0, 0.025, 0.98)
        achieved = achieved_confidence(2.0, 20.0, 0.025, n)
        assert achieved >= 0.98
        assert achieved_confidence(2.0, 20.0, 0.025, n // 2) < 0.98

    def test_zero_std_is_always_confident(self):
        assert achieved_confidence(0.0, 10.0, 0.01, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(1.0, 0.0, 0.01, 0.95)
        with pytest.raises(ValueError):
            required_sample_size(-1.0, 1.0, 0.01, 0.95)
        with pytest.raises(ValueError):
            required_sample_size(1.0, 1.0, 0.01, 1.5)

    def test_empirical_coverage(self):
        """The CLT sample size really does deliver its confidence."""
        n = required_sample_size(std=1.0, mean=5.0, relative_error=0.05,
                                 confidence=0.9)
        rng = random.Random(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = [rng.gauss(5.0, 1.0) for _ in range(n)]
            if abs(statistics.mean(sample) - 5.0) <= 0.05 * 5.0:
                hits += 1
        assert hits / trials >= 0.85


class TestBounds:
    def test_chebyshev_monotone_in_n(self):
        assert chebyshev_bound(1.0, 100, 0.1) > chebyshev_bound(1.0, 1000,
                                                                0.1)

    def test_chebyshev_sample_size_inverts(self):
        n = chebyshev_sample_size(1.0, 0.1, 0.05)
        assert chebyshev_bound(1.0, n, 0.1) <= 0.05

    def test_hoeffding_tighter_than_chebyshev_for_bounded(self):
        # Values in [0, 1]: std <= 0.5.
        cheb = chebyshev_sample_size(0.5, 0.05, 0.01)
        hoef = hoeffding_sample_size(1.0, 0.05, 0.01)
        assert hoef < cheb

    def test_hoeffding_sample_size_inverts(self):
        n = hoeffding_sample_size(1.0, 0.05, 0.01)
        assert hoeffding_bound(1.0, n, 0.05) <= 0.0101

    def test_chernoff_sample_size_inverts(self):
        n = chernoff_sample_size_binomial(0.1, 0.2, 0.01)
        assert chernoff_bound_binomial(0.1, n, 0.2) <= 0.0101

    def test_bounds_capped_at_one(self):
        assert chebyshev_bound(10.0, 1, 0.001) == 1.0
        assert hoeffding_bound(1.0, 1, 1e-9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chebyshev_bound(1.0, 0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_bound(0.0, 10, 0.1)
        with pytest.raises(ValueError):
            chernoff_bound_binomial(0.0, 10, 0.1)


class TestEstimators:
    def test_mean_estimate(self):
        est = estimate_mean([1.0, 2.0, 3.0, 4.0])
        assert est.value == pytest.approx(2.5)
        assert est.standard_error == pytest.approx(
            statistics.stdev([1, 2, 3, 4]) / 2
        )

    def test_sum_scales_by_population(self):
        est = estimate_sum([1.0, 2.0, 3.0], population_size=300)
        assert est.value == pytest.approx(600.0)

    def test_sum_fpc_shrinks_error_for_big_samples(self):
        small = estimate_sum([1.0, 2.0, 3.0, 4.0] * 10, 10_000)
        census_like = estimate_sum([1.0, 2.0, 3.0, 4.0] * 10, 41)
        assert census_like.standard_error < small.standard_error

    def test_count_estimate(self):
        records = [Record(key=i, value=float(i)) for i in range(100)]
        est = estimate_count(records, 100_000, lambda r: r.value < 50)
        assert est.value == pytest.approx(50_000.0)

    def test_avg_with_predicate(self):
        records = [Record(key=i, value=float(i)) for i in range(100)]
        est = estimate_avg(records, predicate=lambda r: r.key < 10)
        assert est.value == pytest.approx(4.5)

    def test_interval_contains_truth_usually(self):
        rng = random.Random(1)
        hits = 0
        for _ in range(300):
            sample = [rng.gauss(10.0, 3.0) for _ in range(100)]
            if estimate_mean(sample).interval(0.95).contains(10.0):
                hits += 1
        assert hits / 300 >= 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_mean([1.0])
        with pytest.raises(ValueError):
            estimate_sum([1.0, 2.0], population_size=1)


class TestHorvitzThompson:
    def test_exact_for_full_inclusion(self):
        """When every pi is 1, HT reduces to the plain sum."""
        items = [(Record(key=i, value=2.0), 1.0) for i in range(10)]
        est = horvitz_thompson_sum(items, total_weight=10.0,
                                   sample_capacity=10)
        assert est.value == pytest.approx(20.0)

    def test_unbiased_under_bernoulli_sampling(self):
        """Monte Carlo unbiasedness with heterogeneous weights."""
        rng = random.Random(2)
        population = [(Record(key=i, value=1.0),
                       2.0 if i % 3 == 0 else 1.0) for i in range(300)]
        total_weight = sum(w for _, w in population)
        capacity = 30
        estimates = []
        for _ in range(400):
            sample = [(r, w) for r, w in population
                      if rng.random() < capacity * w / total_weight]
            est = horvitz_thompson_sum(sample, total_weight, capacity,
                                       value=lambda r: r.value)
            estimates.append(est.value)
        assert statistics.mean(estimates) == pytest.approx(300.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            horvitz_thompson_sum([], total_weight=0.0, sample_capacity=5)
        with pytest.raises(ValueError):
            horvitz_thompson_sum([(Record(key=0), -1.0)],
                                 total_weight=1.0, sample_capacity=5)


class TestSampleQuery:
    def make_query(self, n=1000):
        records = [Record(key=i, value=float(i % 10),
                          timestamp=float(i)) for i in range(n)]
        return SampleQuery(records, population_size=n * 100)

    def test_avg(self):
        assert self.make_query().avg().value == pytest.approx(4.5)

    def test_sum(self):
        q = self.make_query()
        assert q.sum().value == pytest.approx(4.5 * 100_000)

    def test_count_with_predicate(self):
        q = self.make_query()
        est = q.count(lambda r: r.value == 0.0)
        assert est.value == pytest.approx(10_000.0, rel=0.01)

    def test_filter_then_aggregate(self):
        q = self.make_query().filter(lambda r: r.value < 5.0)
        assert len(q) == 500
        assert q.avg().value == pytest.approx(2.0)

    def test_group_by_avg(self):
        groups = self.make_query().group_by(lambda r: int(r.value))
        assert len(groups) == 10
        for g in groups:
            assert g.estimate.value == pytest.approx(float(g.key))

    def test_group_by_count(self):
        groups = self.make_query().group_by(lambda r: int(r.value),
                                            aggregate="count")
        for g in groups:
            assert g.estimate.value == pytest.approx(10_000.0)

    def test_group_by_drops_tiny_groups(self):
        records = [Record(key=i, value=0.0) for i in range(50)]
        records.append(Record(key=99, value=1.0))  # a singleton group
        q = SampleQuery(records, population_size=1000)
        groups = q.group_by(lambda r: r.value)
        assert [g.key for g in groups] == [0.0]

    def test_sum_requires_population(self):
        q = SampleQuery([Record(key=0, value=1.0),
                         Record(key=1, value=2.0)])
        with pytest.raises(ValueError):
            q.sum()
        q.avg()  # fine without a population

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            self.make_query().group_by(lambda r: r.key, aggregate="median")

    def test_error_shrinks_with_sample_size(self):
        """Section 2's core message, empirically."""
        rng = random.Random(3)
        big = [Record(key=i, value=rng.gauss(0, 1)) for i in range(4000)]
        small_q = SampleQuery(big[:100])
        big_q = SampleQuery(big)
        assert (big_q.avg().standard_error
                < small_q.avg().standard_error / 4)


class TestHelpers:
    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == math.inf

    def test_confidence_interval(self):
        ci = ConfidenceInterval(10.0, 2.0, 0.95)
        assert ci.low == 8.0 and ci.high == 12.0
        assert ci.contains(9.0) and not ci.contains(13.0)

    def test_mean_confidence_interval(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0], 0.95)
        assert ci.contains(3.0)
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])
