"""Smoke tests: every shipped example must run end to end.

Examples honour REPRO_EXAMPLE_QUICK=1 (a ~50x smaller workload with the
same code paths), so this entire module runs in seconds.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    env = dict(os.environ, REPRO_EXAMPLE_QUICK="1")
    args = [sys.executable, str(path)]
    if path.stem == "compare_alternatives":
        args += ["--scale", "2000"]
    result = subprocess.run(args, env=env, capture_output=True,
                            text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"
