"""Unit tests for extent allocation."""

import pytest

from repro.storage.extents import Extent, ExtentAllocator


class TestExtent:
    def test_end(self):
        assert Extent(10, 5).end == 15

    def test_overlap_detection(self):
        a = Extent(0, 10)
        assert a.overlaps(Extent(9, 5))
        assert not a.overlaps(Extent(10, 5))
        assert Extent(3, 2).overlaps(a)

    def test_zero_length_extents_never_overlap(self):
        assert not Extent(5, 0).overlaps(Extent(0, 10))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Extent(-1, 5)
        with pytest.raises(ValueError):
            Extent(0, -5)


class TestExtentAllocator:
    def test_bump_allocation(self):
        alloc = ExtentAllocator(100)
        a = alloc.allocate(30, "a")
        b = alloc.allocate(20, "b")
        assert (a.start, a.n_blocks) == (0, 30)
        assert (b.start, b.n_blocks) == (30, 20)
        assert alloc.allocated_blocks == 50
        assert alloc.remaining_blocks == 50

    def test_first_block_offset(self):
        alloc = ExtentAllocator(10, first_block=90)
        extent = alloc.allocate(10)
        assert extent.start == 90 and extent.end == 100

    def test_out_of_space(self):
        alloc = ExtentAllocator(10)
        alloc.allocate(8)
        with pytest.raises(ValueError):
            alloc.allocate(3)

    def test_labels_preserved(self):
        alloc = ExtentAllocator(10)
        extent = alloc.allocate(4, label="LIFO stacks")
        assert extent.label == "LIFO stacks"
        assert alloc.extents[0] is extent

    def test_verify_disjoint_passes(self):
        alloc = ExtentAllocator(100)
        for _ in range(5):
            alloc.allocate(20)
        alloc.verify_disjoint()

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            ExtentAllocator(10).allocate(-1)

    def test_zero_allocation_allowed(self):
        alloc = ExtentAllocator(10)
        extent = alloc.allocate(0)
        assert extent.n_blocks == 0
        assert alloc.remaining_blocks == 10
