"""Tests for skip-based stream feeding (Vitter + geometric file)."""

import collections
import math

import pytest

from conftest import make_geometric_file
from repro.sampling import feed_stream
from repro.storage.records import Record
from repro.streams import CountingStream


def records(n, start=0):
    return [Record(key=i) for i in range(start, start + n)]


class TestFeedStream:
    def test_consumes_the_whole_stream(self):
        gf = make_geometric_file(capacity=200, buffer_capacity=20)
        consumed = feed_stream(records(5000), gf)
        assert consumed == 5000
        assert gf.seen == 5000
        gf.check_invariants()
        assert len(gf.sample()) == 200

    def test_max_records_cap(self):
        gf = make_geometric_file(capacity=200, buffer_capacity=20)
        consumed = feed_stream(CountingStream(iter(records(10 ** 6))), gf,
                               max_records=3000)
        assert consumed == 3000
        assert gf.seen == 3000

    def test_stream_shorter_than_capacity(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50)
        consumed = feed_stream(records(120), gf)
        assert consumed == 120
        assert sorted(r.key for r in gf.sample()) == list(range(120))

    def test_requires_uniform_admission(self):
        gf = make_geometric_file(capacity=100, buffer_capacity=10,
                                 admission="always")
        with pytest.raises(ValueError):
            feed_stream(records(10), gf)

    def test_admission_count_matches_harmonic_law(self):
        """Skips must implement exactly the N/i admission rate."""
        capacity, stream = 100, 20_000
        admitted = []
        for seed in range(25):
            gf = make_geometric_file(capacity=capacity, buffer_capacity=10,
                                     retain_records=False, seed=seed)
            feed_stream(records(stream), gf)
            admitted.append(gf.samples_added)
        expected = capacity + sum(capacity / i
                                  for i in range(capacity + 1, stream + 1))
        mean = sum(admitted) / len(admitted)
        assert mean == pytest.approx(expected, rel=0.05)

    def test_distribution_matches_per_record_offers(self):
        """Same inclusion law as the offer-per-record path."""
        trials, capacity, stream = 400, 50, 500
        skip_counts = collections.Counter()
        offer_counts = collections.Counter()
        for t in range(trials):
            a = make_geometric_file(capacity=capacity, buffer_capacity=10,
                                    seed=t)
            feed_stream(records(stream), a)
            skip_counts.update(r.key for r in a.sample())
            b = make_geometric_file(capacity=capacity, buffer_capacity=10,
                                    seed=t + 10 ** 6)
            for record in records(stream):
                b.offer(record)
            offer_counts.update(r.key for r in b.sample())
        expected = trials * capacity / stream
        sigma = math.sqrt(trials * (capacity / stream))
        for key in range(stream):
            assert abs(skip_counts[key] - expected) < 5 * sigma, key
            assert abs(skip_counts[key] - offer_counts[key]) < 7 * sigma

    def test_budget_expires_inside_a_gap(self):
        gf = make_geometric_file(capacity=100, buffer_capacity=10,
                                 retain_records=False)
        feed_stream(records(100), gf)          # exactly the fill
        consumed = feed_stream(records(1, start=100), gf, max_records=1)
        assert consumed <= 1
        assert gf.seen in (100, 101)
