"""Unit and statistical tests for the single geometric file."""

import collections
import math

import pytest

from conftest import (
    TEST_BLOCK,
    make_geometric_file,
    make_multi_file,
    small_disk_params,
)
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


def feed(gf, n, start=0):
    for i in range(start, start + n):
        gf.offer(Record(key=i, value=float(i), timestamp=float(i)))


class TestConfigValidation:
    def test_buffer_must_be_smaller_than_capacity(self):
        with pytest.raises(ValueError):
            GeometricFileConfig(capacity=100, buffer_capacity=100)

    def test_buffer_minimum(self):
        with pytest.raises(ValueError):
            GeometricFileConfig(capacity=100, buffer_capacity=1)

    def test_bad_record_size(self):
        with pytest.raises(ValueError):
            GeometricFileConfig(capacity=100, buffer_capacity=10,
                                record_size=0)

    def test_bad_stack_multiplier(self):
        with pytest.raises(ValueError):
            GeometricFileConfig(capacity=100, buffer_capacity=10,
                                stack_multiplier=0)

    def test_beta_default_is_one_block(self):
        config = GeometricFileConfig(capacity=1000, buffer_capacity=100,
                                     record_size=50)
        assert config.resolve_beta(32 * 1024) == 655

    def test_stack_records_is_3_sqrt_b(self):
        config = GeometricFileConfig(capacity=10 ** 6,
                                     buffer_capacity=10 ** 4)
        assert config.stack_records() == math.ceil(3 * 100)


class TestConstruction:
    def test_alpha_follows_lemma_1(self):
        gf = make_geometric_file(capacity=10000, buffer_capacity=100)
        assert gf.alpha == pytest.approx(0.99)

    def test_ladder_total_is_buffer(self):
        gf = make_geometric_file()
        assert gf.ladder.total == gf.config.buffer_capacity

    def test_device_too_small_rejected(self):
        config = GeometricFileConfig(capacity=2000, buffer_capacity=100,
                                     record_size=40, beta_records=10)
        device = SimulatedBlockDevice(2, small_disk_params())
        with pytest.raises(ValueError):
            GeometricFile(device, config)

    def test_required_blocks_is_sufficient(self):
        config = GeometricFileConfig(capacity=5000, buffer_capacity=200,
                                     record_size=40)
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params())
        GeometricFile(device, config)  # must not raise

    def test_disk_footprint_close_to_reservoir(self):
        """Section 5: a single geometric file stores ~|R| records."""
        config = GeometricFileConfig(capacity=100_000,
                                     buffer_capacity=1000, record_size=50,
                                     beta_records=80)
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        data_bytes = blocks * TEST_BLOCK
        reservoir_bytes = 100_000 * 50
        # Slack slots, per-level block rounding and stacks cost a little,
        # but the footprint stays close to |R| (Lemma 1) and the
        # overhead shrinks further with scale.
        assert reservoir_bytes <= data_bytes < 1.3 * reservoir_bytes


class TestStartup:
    def test_startup_completes_at_capacity(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 999)
        assert gf.in_startup
        feed(gf, 1, start=999)
        assert not gf.in_startup
        assert gf.disk_size == 1000

    def test_startup_holds_every_record(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 600)
        sample = gf.sample()
        assert sorted(r.key for r in sample) == list(range(600))

    def test_first_flush_is_a_full_buffer(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 50)
        assert gf.flushes == 1
        assert gf.subsamples[0].live == 50

    def test_startup_subsample_sizes_decay(self):
        gf = make_geometric_file(capacity=2000, buffer_capacity=100)
        feed(gf, 2000)
        sizes = [ledger.live for ledger in gf.subsamples]
        # Newest-first ordering: the oldest startup subsample is the
        # largest; rounding can wiggle neighbours by a record or two.
        assert sizes[-1] == max(sizes) == 100
        assert sizes[0] == min(sizes)
        assert sum(sizes) == 2000


class TestSteadyState:
    def test_disk_size_constant_after_fill(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 5000)
        gf.check_invariants()
        assert gf.disk_size == 1000

    def test_sample_size_and_uniqueness(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        feed(gf, 5000)
        sample = gf.sample()
        keys = [r.key for r in sample]
        assert len(keys) == 1000
        assert len(set(keys)) == 1000
        assert all(0 <= k < 5000 for k in keys)

    def test_flush_cadence(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="always")
        feed(gf, 1000)
        startup_flushes = gf.flushes
        feed(gf, 500, start=1000)
        # 500 admissions fill the 50-record buffer ~10 times; the
        # in-buffer replacement branch (probability count/N) absorbs a
        # few admissions, so allow one flush of slack.
        assert startup_flushes + 9 <= gf.flushes <= startup_flushes + 10

    def test_invariants_hold_throughout(self):
        gf = make_geometric_file(capacity=600, buffer_capacity=40)
        for i in range(4000):
            gf.offer(Record(key=i))
            if i % 400 == 0:
                gf.check_invariants()
        gf.check_invariants()

    def test_every_flush_writes_every_level(self):
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 admission="always")
        feed(gf, 2000)
        writes_before = gf.device.model.stats.writes
        flushes_before = gf.flushes
        feed(gf, 500, start=2000)
        flushes = gf.flushes - flushes_before
        writes = gf.device.model.stats.writes - writes_before
        assert flushes >= 4
        # One write per ladder level per flush, plus stack traffic.
        assert writes >= flushes * gf.ladder.n_disk_segments

    def test_subsample_count_bounded(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=100)
        feed(gf, 20000)
        # Disk-holding subsamples <= ladder depth; plus decaying tails.
        disk_holding = sum(1 for s in gf.subsamples if s.segment_sizes)
        assert disk_holding <= gf.ladder.n_disk_segments + 1
        assert gf.n_subsamples < 200

    def test_newest_subsample_is_full_buffer(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="always")
        feed(gf, 1200)  # well past the first steady flush
        assert gf.subsamples[0].live == 50


class TestUniformity:
    def test_inclusion_uniform_over_stream(self):
        """The headline guarantee: a true uniform sample at all times."""
        trials, capacity, stream = 300, 200, 1000
        counts = collections.Counter()
        for t in range(trials):
            gf = make_geometric_file(capacity=capacity, buffer_capacity=20,
                                     seed=5000 + t)
            feed(gf, stream)
            counts.update(r.key for r in gf.sample())
        expected = trials * capacity / stream
        sigma = math.sqrt(trials * (capacity / stream)
                          * (1 - capacity / stream))
        # Per-record count within 5 sigma, and no systematic position
        # bias between the oldest and newest stream deciles.
        for key in range(stream):
            assert abs(counts[key] - expected) < 5 * sigma, key
        first = sum(counts[k] for k in range(100)) / 100
        last = sum(counts[k] for k in range(900, 1000)) / 100
        assert abs(first - last) < 0.6 * sigma

    def test_chi_square(self):
        trials, capacity, stream = 200, 100, 500
        counts = collections.Counter()
        for t in range(trials):
            gf = make_geometric_file(capacity=capacity, buffer_capacity=20,
                                     seed=9000 + t)
            feed(gf, stream)
            counts.update(r.key for r in gf.sample())
        expected = trials * capacity / stream
        chi2 = sum((counts[k] - expected) ** 2 / expected
                   for k in range(stream))
        # 499 dof: mean 499, sd ~31.6; 600 is ~3 sigma plus margin.
        assert chi2 < 650


class TestIOBehaviour:
    def test_no_reads_of_data_in_steady_state(self):
        """Design goal (2): buffer flushes require no data reads."""
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 admission="always")
        feed(gf, 2000)
        reads_before = gf.device.model.stats.blocks_read
        feed(gf, 1000, start=2000)
        reads = gf.device.model.stats.blocks_read - reads_before
        # Only stack retirements read; bounded by a few stack regions.
        assert reads <= 10 * gf._layout.stack_blocks + 10

    def test_seeks_scale_with_segments_not_buffer(self):
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 admission="always")
        feed(gf, 2000)
        seeks_before = gf.device.model.stats.seeks
        flushes_before = gf.flushes
        feed(gf, 500, start=2000)
        flushes = gf.flushes - flushes_before
        seeks = (gf.device.model.stats.seeks - seeks_before) / flushes
        segments = gf.ladder.n_disk_segments
        # Paper: around four head movements per segment.
        assert segments <= seeks <= 6 * segments

    def test_count_only_matches_record_mode_io(self):
        """The fast path must charge the same I/O as the exact path."""
        gf_fast = make_geometric_file(capacity=1000, buffer_capacity=100,
                                      retain_records=False,
                                      admission="always", seed=7)
        gf_fast.ingest(5000)
        gf_slow = make_geometric_file(capacity=1000, buffer_capacity=100,
                                      retain_records=True,
                                      admission="always", seed=7)
        feed(gf_slow, 5000)
        fast = gf_fast.device.model.stats
        slow = gf_slow.device.model.stats
        # The count-only path folds in-buffer replacements into joins,
        # shifting the flush cadence by under B/(2N); per-flush I/O must
        # agree tightly.
        assert gf_fast.flushes == pytest.approx(gf_slow.flushes, abs=3)
        assert (fast.blocks_written / gf_fast.flushes
                == pytest.approx(slow.blocks_written / gf_slow.flushes,
                                 rel=0.05))
        assert (fast.seeks / gf_fast.flushes
                == pytest.approx(slow.seeks / gf_slow.flushes, rel=0.10))

    def test_stack_overflows_are_rare_with_3_sqrt_b(self):
        gf = make_geometric_file(capacity=5000, buffer_capacity=500,
                                 admission="always")
        feed(gf, 30000)
        assert gf.stack_overflows == 0


class TestModes:
    def test_count_only_sample_rejected(self):
        gf = make_geometric_file(retain_records=False)
        gf.ingest(100)
        with pytest.raises(TypeError):
            gf.sample()

    def test_uniform_admission_thins_the_stream(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="uniform")
        feed(gf, 10000)
        # Expected admissions: 1000 + sum_{i>1000} 1000/i ~ 3302.
        expected = 1000 + sum(1000 / i for i in range(1001, 10001))
        assert gf.samples_added == pytest.approx(expected, rel=0.1)

    def test_always_admission_takes_everything(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="always")
        feed(gf, 3000)
        assert gf.samples_added == 3000

    def test_mid_flush_sample_is_full_size(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="always")
        feed(gf, 1025)  # half a buffer pending
        sample = gf.sample()
        assert len(sample) == 1000
        keys = {r.key for r in sample}
        assert len(keys) == 1000


class TestAlwaysAdmissionLaw:
    def test_inclusion_decays_geometrically_with_age(self):
        """In "always" mode (the paper's benchmark setting) a record
        that arrived a*N admissions ago survives with probability about
        (1 - 1/N)^(a*N) ~ exp(-a): the recency bias the paper notes."""
        import math

        capacity, stream = 200, 1000
        trials = 400
        survivors_by_age_band = [0, 0, 0]  # bands: <1N, 1-2N, 2-3N old
        for t in range(trials):
            gf = make_geometric_file(capacity=capacity, buffer_capacity=20,
                                     admission="always", seed=20_000 + t)
            feed(gf, stream)
            for record in gf.sample():
                age = (stream - 1 - record.key) / capacity
                if age < 1.0:
                    survivors_by_age_band[0] += 1
                elif age < 2.0:
                    survivors_by_age_band[1] += 1
                elif age < 3.0:
                    survivors_by_age_band[2] += 1
        # Expected count in band [a, a+1): trials * N * (e^-a - e^-(a+1))
        for band, observed in enumerate(survivors_by_age_band):
            expected = (trials * capacity
                        * (math.exp(-band) - math.exp(-(band + 1))))
            assert observed == pytest.approx(expected, rel=0.1), band


class TestStartupIO:
    def test_fill_phase_is_near_sequential(self):
        """Section 8: every option writes the first |R| records 'more
        or less directly to disk' -- one seek per start-up flush, not
        one per segment."""
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 retain_records=False, admission="always")
        gf.ingest(2000)  # exactly the fill
        stats = gf.device.model.stats
        assert not gf.in_startup
        # One head movement per start-up flush (plus rounding slack),
        # far fewer than flushes * segments.
        assert stats.seeks <= gf.flushes + 2
        assert stats.blocks_read == 0


class TestSlotReclamation:
    """Dead subsamples must hand their slots back (regression).

    With one-record segments a subsample is often fully evicted while
    it still holds disk segments; before the fix those slots leaked
    out of the free lists and deep levels ran dry within ~100 records
    ("level L has no free slots").
    """

    def test_tiny_segments_survive_long_streams(self):
        gf = make_geometric_file(capacity=39, buffer_capacity=13,
                                 beta_records=1, admission="always",
                                 seed=4089)
        for i in range(3000):
            gf.offer(Record(key=i))
        gf.check_invariants()
        assert len(gf.sample()) == 39

    def test_slot_conservation_holds_throughout(self):
        gf = make_geometric_file(capacity=60, buffer_capacity=12,
                                 beta_records=1, admission="always",
                                 seed=7)
        for i in range(1500):
            gf.offer(Record(key=i))
            if i % 97 == 0:
                gf.check_invariants()  # includes per-level slot audit
        gf.check_invariants()

    def test_multi_file_tiny_segments_survive(self):
        mf = make_multi_file(capacity=60, buffer_capacity=12,
                             beta_records=1, admission="always",
                             alpha_prime=0.5, seed=11)
        for i in range(1500):
            mf.offer(Record(key=i))
        mf.check_invariants()
        assert len(mf.sample()) == 60
