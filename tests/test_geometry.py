"""Unit tests for the geometric-series arithmetic (paper Sections 4.2, 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    alpha_for,
    build_ladder,
    effective_alpha,
    file_count_for,
    geometric_sum,
    geometric_tail_start,
    geometric_total,
    segments_on_disk,
    startup_fill_sizes,
)


class TestObservations:
    """The paper's Observations 1-3 against brute-force summation."""

    @pytest.mark.parametrize("n,alpha,m", [(10.0, 0.8, 5), (3.0, 0.5, 0),
                                           (1.0, 0.99, 100),
                                           (7.5, 0.1, 3)])
    def test_observation_1_finite_sum(self, n, alpha, m):
        brute = sum(n * alpha ** i for i in range(m + 1))
        assert geometric_sum(n, alpha, m) == pytest.approx(brute)

    def test_observation_1_bathtub_example(self):
        """10 gallons, alpha=0.8: scoops of 2, 1.6, 1.28, ..."""
        assert geometric_sum(2.0, 0.8, 0) == pytest.approx(2.0)
        assert geometric_sum(2.0, 0.8, 1) == pytest.approx(3.6)
        assert geometric_sum(2.0, 0.8, 2) == pytest.approx(4.88)

    @pytest.mark.parametrize("n,alpha", [(2.0, 0.8), (1.0, 0.99),
                                         (5.0, 0.5)])
    def test_observation_2_infinite_sum(self, n, alpha):
        brute = sum(n * alpha ** i for i in range(10000))
        assert geometric_total(n, alpha) == pytest.approx(brute, rel=1e-6)

    def test_observation_2_bathtub_total(self):
        # Scoops of n=2 with alpha=0.8 eventually drain all 10 gallons.
        assert geometric_total(2.0, 0.8) == pytest.approx(10.0)

    def test_observation_3_tail_start(self):
        n, alpha, beta = 2.0, 0.8, 1.0
        j = geometric_tail_start(n, alpha, beta)
        tail = n * alpha ** j / (1 - alpha)
        tail_next = n * alpha ** (j + 1) / (1 - alpha)
        assert tail >= beta > tail_next

    def test_observation_3_large_beta_gives_zero(self):
        assert geometric_tail_start(2.0, 0.8, 100.0) == 0

    @pytest.mark.parametrize("bad_alpha", [0.0, 1.0, -0.5, 1.5])
    def test_alpha_range_enforced(self, bad_alpha):
        with pytest.raises(ValueError):
            geometric_sum(1.0, bad_alpha, 1)
        with pytest.raises(ValueError):
            geometric_total(1.0, bad_alpha)


class TestPaperNumbers:
    """The worked examples of Section 5.1 / 5.2, exactly."""

    def test_alpha_099_gives_1029_segments(self):
        # 1 GB buffer of 100 B records, beta = 320 records (32 KB).
        assert segments_on_disk(10 ** 7, 0.99, 320) == 1029

    def test_alpha_0999_gives_10344_segments(self):
        assert segments_on_disk(10 ** 7, 0.999, 320) == 10344

    def test_beta_1mb_gives_687_segments(self):
        # Section 5.2: 1 MB of 100 B records for beta -> 687 segments.
        assert segments_on_disk(10 ** 7, 0.99, 10 ** 4) == 687

    def test_section6_alpha_09_under_100_segments(self):
        # "For alpha' = 0.9, we will need less than 100 segments per
        # 1 GB buffer flush."
        assert segments_on_disk(10 ** 7, 0.9, 320) < 100


class TestLemma1:
    def test_alpha_for_basic(self):
        # B / (1 - alpha) = N  =>  alpha = 1 - B/N.
        assert alpha_for(10 ** 9, 10 ** 7) == pytest.approx(0.99)

    def test_alpha_for_validation(self):
        with pytest.raises(ValueError):
            alpha_for(100, 100)
        with pytest.raises(ValueError):
            alpha_for(100, 0)

    def test_subsample_sizes_sum_to_reservoir(self):
        """Lemma 1: sum over i of B * alpha^i = N."""
        n_reservoir, buffer = 10 ** 6, 10 ** 4
        alpha = alpha_for(n_reservoir, buffer)
        total = geometric_total(buffer, alpha)
        assert total == pytest.approx(n_reservoir)

    def test_file_count_for(self):
        assert file_count_for(0.99, 0.9) == 10
        assert file_count_for(0.999, 0.9) == 100
        assert file_count_for(0.99, 0.99) == 1

    def test_file_count_validation(self):
        with pytest.raises(ValueError):
            file_count_for(0.9, 0.99)  # alpha' > alpha

    def test_effective_alpha_inverts_file_count(self):
        alpha = alpha_for(10 ** 6, 10 ** 4)
        prime = effective_alpha(10 ** 6, 10 ** 4, 10)
        assert prime == pytest.approx(1 - 10 * (1 - alpha))
        assert file_count_for(alpha, prime) == 10

    def test_effective_alpha_overstriping_rejected(self):
        with pytest.raises(ValueError):
            effective_alpha(1000, 100, 11)


class TestLadders:
    def test_sizes_decay_and_sum_exactly(self):
        ladder = build_ladder(10000, 0.95, 100)
        assert ladder.total == 10000
        sizes = ladder.segment_sizes
        # Cumulative rounding may wiggle by one record; the decay must
        # still be monotone up to that quantisation.
        assert all(b <= a + 1 for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] >= sizes[-1]
        assert ladder.tail_size >= 100  # tail holds at least beta

    def test_first_segment_close_to_n(self):
        buffer, alpha = 10000, 0.9
        ladder = build_ladder(buffer, alpha, 100)
        assert ladder.segment_sizes[0] == pytest.approx(
            buffer * (1 - alpha), abs=1
        )

    def test_size_below(self):
        ladder = build_ladder(1000, 0.8, 50)
        assert ladder.size_below(0) == 1000
        assert ladder.size_below(1) == 1000 - ladder.segment_sizes[0]
        assert ladder.size_below(ladder.n_disk_segments) == ladder.tail_size
        with pytest.raises(ValueError):
            ladder.size_below(-1)

    def test_beta_larger_than_buffer_gives_pure_tail(self):
        ladder = build_ladder(100, 0.9, 1000)
        assert ladder.n_disk_segments == 0
        assert ladder.tail_size == 100

    @given(buffer=st.integers(10, 50000),
           alpha=st.floats(0.05, 0.995),
           beta=st.integers(1, 5000))
    @settings(max_examples=200, deadline=None)
    def test_ladder_partition_property(self, buffer, alpha, beta):
        """Any ladder is an exact partition with non-negative parts."""
        ladder = build_ladder(buffer, alpha, beta)
        assert sum(ladder.segment_sizes) + ladder.tail_size == buffer
        assert all(s > 0 for s in ladder.segment_sizes)
        assert ladder.tail_size >= 0


class TestStartupSchedule:
    def test_sums_to_reservoir_exactly(self):
        sizes = startup_fill_sizes(10 ** 5, 10 ** 3, 0.99)
        assert sum(sizes) == 10 ** 5
        assert all(s > 0 for s in sizes)

    def test_first_fill_is_a_whole_buffer(self):
        sizes = startup_fill_sizes(10 ** 5, 10 ** 3, 0.99)
        assert sizes[0] == 10 ** 3

    def test_fills_decay_geometrically(self):
        sizes = startup_fill_sizes(10 ** 6, 10 ** 4, 0.99)
        # Ratio of consecutive fills approximates alpha.
        ratios = [b / a for a, b in zip(sizes[:20], sizes[1:21])]
        for ratio in ratios:
            assert ratio == pytest.approx(0.99, abs=0.01)

    def test_reservoir_smaller_than_buffer_rejected(self):
        with pytest.raises(ValueError):
            startup_fill_sizes(10, 100, 0.9)

    @given(reservoir=st.integers(100, 10 ** 6))
    @settings(max_examples=100, deadline=None)
    def test_schedule_partition_property(self, reservoir):
        buffer = max(2, reservoir // 100)
        alpha = 1 - buffer / reservoir
        if not 0 < alpha < 1:
            return
        sizes = startup_fill_sizes(reservoir, buffer, alpha)
        assert sum(sizes) == reservoir
        assert all(s > 0 for s in sizes)
        assert max(sizes) <= buffer
