"""End-to-end integration tests: streams through structures to queries."""

import statistics

import pytest

from conftest import TEST_BLOCK, make_geometric_file, make_multi_file
from repro.baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from repro.bench import experiment_1, run_until
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.zonemap import ZoneMapIndex
from repro.estimate import SampleQuery, relative_error
from repro.storage.device import FileBlockDevice
from repro.streams import NormalStream, SensorStream, UniformStream, take


class TestStreamToQueryPipeline:
    def test_mean_estimate_from_geometric_file(self):
        """Stream -> geometric file -> AQP, against ground truth."""
        stream = NormalStream(mean=20.0, std=2.0, seed=42)
        gf = make_geometric_file(capacity=2000, buffer_capacity=100)
        records = take(stream, 20_000)
        truth = statistics.mean(r.value for r in records)
        for record in records:
            gf.offer(record)
        query = SampleQuery(gf.sample(), population_size=20_000)
        estimate = query.avg()
        assert relative_error(estimate.value, truth) < 0.05
        assert estimate.interval(0.999).contains(truth)

    def test_count_estimate_with_selection(self):
        stream = UniformStream(0.0, 1.0, seed=7)
        gf = make_geometric_file(capacity=2000, buffer_capacity=100)
        for record in take(stream, 10_000):
            gf.offer(record)
        query = SampleQuery(gf.sample(), population_size=10_000)
        est = query.count(lambda r: r.value < 0.25)
        assert relative_error(est.value, 2500.0) < 0.15

    def test_sensor_group_by(self):
        stream = SensorStream(n_sensors=100, n_regions=4, seed=3)
        gf = make_geometric_file(capacity=3000, buffer_capacity=100)
        records = take(stream, 15_000)
        for record in records:
            gf.offer(record)
        query = SampleQuery(gf.sample(), population_size=15_000)
        groups = query.group_by(
            lambda r: SensorStream.parse_payload(r)[1]
        )
        assert len(groups) == 4
        # Region means must track ground truth.
        for group in groups:
            truth = statistics.mean(
                r.value for r in records
                if SensorStream.parse_payload(r)[1] == group.key
            )
            assert relative_error(group.estimate.value, truth) < 0.05

    def test_zonemap_accelerated_time_window(self):
        stream = SensorStream(n_sensors=50, seed=5)
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 admission="always")
        records = take(stream, 10_000)
        for record in records:
            gf.offer(record)
        index = ZoneMapIndex(gf, field="timestamp")
        cutoff = records[-1].timestamp * 0.95
        recent = list(index.query(cutoff, records[-1].timestamp + 1))
        assert all(r.timestamp >= cutoff for r in recent)
        assert index.last_stats.pruned_fraction > 0.3


class TestRealFileBackend:
    def test_geometric_file_on_a_real_file(self, tmp_path):
        """The structure must run unmodified over a filesystem file."""
        config = GeometricFileConfig(capacity=1000, buffer_capacity=50,
                                     record_size=40, retain_records=True,
                                     beta_records=5)
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        with FileBlockDevice(tmp_path / "reservoir.bin", blocks,
                             TEST_BLOCK) as device:
            gf = GeometricFile(device, config, seed=0)
            for record in take(UniformStream(seed=1), 5000):
                gf.offer(record)
            gf.check_invariants()
            keys = [r.key for r in gf.sample()]
            assert len(set(keys)) == 1000
        assert (tmp_path / "reservoir.bin").stat().st_size \
            == blocks * TEST_BLOCK

    def test_baseline_on_a_real_file(self, tmp_path):
        config = DiskReservoirConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, retain_records=True)
        blocks = ScanReservoir.required_blocks(config, TEST_BLOCK)
        with FileBlockDevice(tmp_path / "scan.bin", blocks,
                             TEST_BLOCK) as device:
            r = ScanReservoir(device, config, seed=0)
            for record in take(UniformStream(seed=2), 2000):
                r.offer(record)
            assert len({x.key for x in r.sample()}) == 500


class TestAllAlternativesAgree:
    def test_same_sample_law_everywhere(self):
        """All five maintainers draw from the same distribution: compare
        first-moment statistics of the retained keys."""
        capacity, stream_len = 400, 2000
        means = {}
        for name, factory in {
            "geo": lambda s: make_geometric_file(
                capacity=capacity, buffer_capacity=40, seed=s),
            "multi": lambda s: make_multi_file(
                capacity=capacity, buffer_capacity=40, seed=s),
        }.items():
            keys = []
            for seed in range(30):
                r = factory(seed)
                for record in take(UniformStream(seed=seed), stream_len):
                    r.offer(record)
                keys.extend(x.key for x in r.sample())
            means[name] = statistics.mean(keys)
        # Uniform over [0, 2000): mean ~ 999.5.  1 sigma ~ 5.8 here.
        for name, mean in means.items():
            assert mean == pytest.approx(999.5, abs=25), name


class TestFigure7Shape:
    """The paper's qualitative findings, at reduced (1/100) scale.

    Shrinking the record counts keeps all ratios but inflates the
    relative weight of seeks (segment counts shrink only
    logarithmically), so assertions here are the orderings that survive
    the distortion; the full paper-scale ordering is asserted by the
    benchmark suite (EXPERIMENTS.md).
    """

    def test_ordering_of_alternatives(self):
        spec = experiment_1(scale=100, seed=1)
        finals = {}
        for name in ("virtual mem", "scan", "local overwrite",
                     "geo file", "multiple geo files"):
            result = run_until(spec.make(name), spec.horizon_seconds)
            finals[name] = result.final_samples
        # Paper, Figure 7(a): the buffered localized structures beat
        # the single geometric file, which beats scan and virtual
        # memory; virtual memory barely moves past the initial fill.
        assert finals["multiple geo files"] > finals["geo file"]
        assert finals["local overwrite"] > finals["geo file"]
        assert finals["multiple geo files"] > finals["scan"]
        assert finals["multiple geo files"] > finals["virtual mem"]
        fill = spec.capacity
        assert finals["virtual mem"] < 1.2 * fill

    def test_local_overwrite_degrades_multi_does_not(self):
        """'Only the multiple geo files option does not have much of a
        decline in performance after the reservoir fills' vs local
        overwrite's 'performance decreases over time'."""
        spec = experiment_1(scale=100, seed=2)

        def early_late_rate(name):
            result = run_until(spec.make(name), spec.horizon_seconds)
            h = spec.horizon_seconds
            early = (result.samples_at(0.4 * h)
                     - result.samples_at(0.25 * h))
            late = result.samples_at(h) - result.samples_at(0.85 * h)
            return late / max(early, 1.0)

        local = early_late_rate("local overwrite")
        multi = early_late_rate("multiple geo files")
        assert local < 0.8      # clearly degrading
        assert multi > local    # and multi holds up better
