"""The pluggable sampling-law engine (``repro.sampling.laws``).

Three layers of coverage:

* **Bit-exact twin parity** for the uniform law: a geometric file (or
  multi-file) built with an explicit ``law="uniform"`` must replay the
  pre-refactor RNG streams exactly -- identical sample keys, equal
  DiskStats, equal simulated clock -- against a default-config twin,
  on memory, simulated, and simulated+columnar devices.

* **Distributional equivalence** for the three new laws: chi-square /
  KS comparisons of the disk engine against the in-memory reference
  twins of :func:`repro.sampling.laws.reference_for` over many seeded
  trials (the same acceptance bar PR 2 set for batched admission).

* **Machinery**: the aux-column plumbing through buffer, ledgers, and
  checkpoints (hypothesis round-trips for all four laws), the law
  guards on uniform-only paths, and crash-replay of a weighted law
  through the sharded service's journal.
"""

from __future__ import annotations

import collections
import io
import math
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from conftest import TEST_BLOCK, keyed_records, small_disk_params
from repro.core.buffer import SampleBuffer
from repro.core.checkpoint import load_geometric_file, save_geometric_file
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.managed import ManagedSample
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.sampling import feed_stream
from repro.sampling.laws import (
    LAW_NAMES,
    AExpJLaw,
    SlidingWindowLaw,
    UniformLaw,
    WeightedReplacementLaw,
    make_law,
    reference_for,
)
from repro.sampling.weights import (
    exp_jump_keys,
    uniform_weight,
    value_proportional,
)
from repro.storage.device import MemoryBlockDevice, SimulatedBlockDevice
from repro.storage.records import Record
from test_batch_ingest import P_MIN, chi_square_p

pytestmark = pytest.mark.laws

#: Ten weight classes, so value-proportional laws have a coarse but
#: well-populated category structure for the chi-square comparisons.
N_CLASSES = 10


def two_sample_p(a: collections.Counter, b: collections.Counter) -> float:
    """Two-sample chi-square over class counts.

    Engine-vs-reference comparisons have sampling noise on *both*
    sides; the one-sample ``chi_square_p`` (which treats its second
    argument as an exact expectation) would double-count that variance
    and trip on healthy runs.
    """
    classes = sorted(set(a) | set(b))
    table = np.array([[a.get(c, 0) for c in classes],
                      [b.get(c, 0) for c in classes]])
    return float(scipy_stats.chi2_contingency(table).pvalue)


def valued_records(n: int, start: int = 0) -> list[Record]:
    """Records whose value (= weight class) cycles through 1..10."""
    return [Record(key=i, value=float(i % N_CLASSES) + 1.0,
                   timestamp=float(i))
            for i in range(start, start + n)]


def law_config(law, law_params=(), *, capacity=100, buffer_capacity=10,
               **kwargs):
    kwargs.setdefault("beta_records", 4)
    kwargs.setdefault("retain_records", True)
    return GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=40, law=law, law_params=law_params, **kwargs)


def law_file(law, law_params=(), *, seed=0, device="memory",
             weight_fn=None, **kwargs) -> GeometricFile:
    config = law_config(law, law_params, **kwargs)
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    if device == "memory":
        dev = MemoryBlockDevice(blocks, TEST_BLOCK)
    else:
        dev = SimulatedBlockDevice(blocks, small_disk_params())
    return GeometricFile(dev, config, seed=seed, weight_fn=weight_fn)


# -- construction and config validation --------------------------------------


class TestMakeLaw:
    def test_names(self):
        assert isinstance(make_law("uniform"), UniformLaw)
        assert isinstance(make_law("aexpj"), AExpJLaw)
        assert isinstance(make_law("wr"), WeightedReplacementLaw)
        law = make_law("window", (("window", 500), ("sample_size", 25)))
        assert isinstance(law, SlidingWindowLaw)
        assert law.window == 500
        assert law.sample_size_for(100) == 25

    def test_unknown_law(self):
        with pytest.raises(ValueError, match="unknown sampling law"):
            make_law("priority")

    def test_window_requires_window_param(self):
        with pytest.raises(ValueError, match="'window', W"):
            make_law("window")

    def test_weight_specs(self):
        record = Record(key=1, value=3.0, timestamp=10.0)
        assert make_law("aexpj").weight_fn(record) == 1.0
        valued = make_law("aexpj", (("weight", "value"),))
        assert valued.weight_fn(record) == pytest.approx(3.0)
        recency = make_law("aexpj", (("weight", "recency"),
                                     ("half_life", 10.0)))
        assert recency.weight_fn(record) == pytest.approx(2.0)

    def test_recency_needs_half_life(self):
        with pytest.raises(ValueError, match="half_life"):
            make_law("aexpj", (("weight", "recency"),))

    def test_unknown_weight_spec(self):
        with pytest.raises(ValueError, match="unknown weight spec"):
            make_law("aexpj", (("weight", "sqrt"),))

    def test_explicit_weight_fn_wins(self):
        law = make_law("aexpj", (("weight", "value"),),
                       weight_fn=uniform_weight)
        assert law.weight_fn is uniform_weight

    def test_config_validates_law_name(self):
        with pytest.raises(ValueError, match="unknown sampling law"):
            law_config("priority")

    def test_non_uniform_law_requires_retention(self):
        with pytest.raises(ValueError, match="retain_records"):
            law_config("aexpj", retain_records=False)

    def test_window_sample_size_must_fit_budget(self):
        with pytest.raises(ValueError, match="candidate budget"):
            law_file("window", (("window", 500), ("sample_size", 150)),
                     capacity=100)

    def test_window_sample_size_must_fit_window(self):
        with pytest.raises(ValueError, match="exceeds the window"):
            law_file("window", (("window", 10), ("sample_size", 25)),
                     capacity=100)

    def test_law_params_survive_config_round_trip(self):
        from dataclasses import asdict

        config = law_config("window", (("window", 500),
                                       ("sample_size", 25)))
        rebuilt = GeometricFileConfig(**asdict(config))
        assert rebuilt.law == "window"
        assert dict(rebuilt.law_params) == {"window": 500,
                                            "sample_size": 25}


# -- uniform twin parity ------------------------------------------------------


class TestUniformTwinParity:
    """law='uniform' must be bit-exact with the default config."""

    @pytest.mark.parametrize("device", ["memory", "sim"])
    def test_single_file_twins(self, device):
        records = valued_records(4000)
        twins = []
        for law_kw in ({}, {"law": "uniform"}):
            config = GeometricFileConfig(
                capacity=300, buffer_capacity=30, record_size=40,
                beta_records=4, retain_records=True, **law_kw)
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            dev = (MemoryBlockDevice(blocks, TEST_BLOCK)
                   if device == "memory"
                   else SimulatedBlockDevice(blocks, small_disk_params()))
            gf = GeometricFile(dev, config, seed=11)
            gf.offer_many(records[:2500])
            for record in records[2500:3000]:
                gf.offer(record)
            gf.offer_many(records[3000:])
            twins.append(gf)
        a, b = twins
        assert [r.key for r in a.sample()] == [r.key for r in b.sample()]
        assert a.device.stats() == b.device.stats()
        assert a._clock() == b._clock()
        assert a.flushes == b.flushes

    def test_multi_file_twins(self):
        records = valued_records(5000)
        twins = []
        for law_kw in ({}, {"law": "uniform"}):
            config = MultiFileConfig(
                capacity=400, buffer_capacity=25, record_size=40,
                beta_records=4, retain_records=True, **law_kw)
            blocks = MultipleGeometricFiles.required_blocks(
                config, TEST_BLOCK)
            dev = SimulatedBlockDevice(blocks, small_disk_params())
            gf = MultipleGeometricFiles(dev, config, seed=3)
            gf.offer_many(records)
            twins.append(gf)
        a, b = twins
        assert [r.key for r in a.sample()] == [r.key for r in b.sample()]
        assert a.device.stats() == b.device.stats()
        assert a._clock() == b._clock()

    def test_columnar_twins(self):
        records = valued_records(4000)
        twins = []
        for law_kw in ({}, {"law": "uniform"}):
            config = GeometricFileConfig(
                capacity=300, buffer_capacity=30, record_size=40,
                beta_records=4, retain_records=True, columnar=True,
                **law_kw)
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            dev = SimulatedBlockDevice(blocks, small_disk_params())
            gf = GeometricFile(dev, config, seed=5)
            for start in range(0, 4000, 500):
                gf.offer_batch(records[start:start + 500])
            twins.append(gf)
        a, b = twins
        assert (a.sample_batch().to_bytes() == b.sample_batch().to_bytes())
        assert a.device.stats() == b.device.stats()
        assert a._clock() == b._clock()

    def test_count_only_ingest_twins(self):
        twins = []
        for law_kw in ({}, {"law": "uniform"}):
            config = GeometricFileConfig(
                capacity=300, buffer_capacity=30, record_size=40,
                beta_records=4, retain_records=False,
                admission="uniform", **law_kw)
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            dev = SimulatedBlockDevice(blocks, small_disk_params())
            gf = GeometricFile(dev, config, seed=2)
            gf.ingest(20_000)
            twins.append(gf)
        a, b = twins
        assert a.device.stats() == b.device.stats()
        assert a._clock() == b._clock()
        assert a.flushes == b.flushes


# -- A-ExpJ distributional equivalence ----------------------------------------


class TestAExpJ:
    TRIALS = 120
    STREAM = 400
    CAPACITY = 60

    def _class_counts(self, records) -> collections.Counter:
        return collections.Counter(int(r.value) for r in records)

    def test_matches_reference_by_weight_class(self):
        """Inclusion frequency per weight class: engine vs reference.

        Heavier records must be over-represented identically in both;
        the reference is dense A-Res over the same key kernel, which
        Efraimidis & Spirakis prove draws the same distribution.
        """
        stream = valued_records(self.STREAM)
        engine_counts: collections.Counter = collections.Counter()
        reference_counts: collections.Counter = collections.Counter()
        for trial in range(self.TRIALS):
            gf = law_file("aexpj", (("weight", "value"),),
                          capacity=self.CAPACITY, seed=trial)
            gf.offer_many(stream)
            engine_counts += self._class_counts(gf.sample())
            ref = reference_for("aexpj", capacity=self.CAPACITY,
                                weight_fn=value_proportional(),
                                seed=10_000 + trial)
            ref.offer_many(stream)
            reference_counts += self._class_counts(ref.sample())
        assert sum(engine_counts.values()) == self.TRIALS * self.CAPACITY
        assert two_sample_p(engine_counts, reference_counts) > P_MIN
        # Heavy classes really are favoured (sanity on both sides).
        assert engine_counts[10] > 2 * engine_counts[1]

    def test_sample_is_distinct_and_capped(self):
        gf = law_file("aexpj", (("weight", "value"),), capacity=80)
        gf.offer_many(valued_records(1500))
        sample = gf.sample()
        keys = [r.key for r in sample]
        assert len(keys) == 80
        assert len(set(keys)) == 80
        gf.check_invariants()

    def test_threshold_rises_monotonically(self):
        gf = law_file("aexpj", (("weight", "value"),), capacity=60)
        thresholds = []
        for start in range(0, 1200, 200):
            gf.offer_many(valued_records(200, start))
            thresholds.append(gf._law._log_t)
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] > -math.inf

    def test_scalar_and_batched_admission_agree(self):
        """offer() and offer_many() draw from the same law (KS)."""
        stream = valued_records(self.STREAM)
        scalar_values, batched_values = [], []
        for trial in range(60):
            a = law_file("aexpj", (("weight", "value"),),
                         capacity=self.CAPACITY, seed=trial)
            for record in stream:
                a.offer(record)
            scalar_values.extend(r.value for r in a.sample())
            b = law_file("aexpj", (("weight", "value"),),
                         capacity=self.CAPACITY, seed=5_000 + trial)
            b.offer_many(stream)
            batched_values.extend(r.value for r in b.sample())
        p = scipy_stats.ks_2samp(scalar_values, batched_values).pvalue
        assert p > P_MIN


# -- weighted with-replacement equivalence ------------------------------------


class TestWeightedReplacement:
    TRIALS = 120
    STREAM = 400
    CAPACITY = 60

    def test_matches_reference_by_weight_class(self):
        """Slot-occupancy frequency per weight class vs i.i.d. slots.

        The engine's slots are negatively correlated (victims drawn
        without replacement), but the per-slot marginals are exactly
        ``w_i / W`` on both sides, so class counts must agree.
        """
        stream = valued_records(self.STREAM)
        engine_counts: collections.Counter = collections.Counter()
        reference_counts: collections.Counter = collections.Counter()
        for trial in range(self.TRIALS):
            gf = law_file("wr", (("weight", "value"),),
                          capacity=self.CAPACITY, seed=trial)
            gf.offer_many(stream)
            engine_counts.update(int(r.value) for r in gf.sample())
            ref = reference_for("wr", capacity=self.CAPACITY,
                                weight_fn=value_proportional(),
                                seed=10_000 + trial)
            ref.offer_many(stream)
            reference_counts.update(int(r.value) for r in ref.sample())
        assert sum(engine_counts.values()) == self.TRIALS * self.CAPACITY
        assert two_sample_p(engine_counts, reference_counts) > P_MIN
        assert engine_counts[10] > 2 * engine_counts[1]

    def test_sample_carries_multiplicity(self):
        """With-replacement: one heavy record may fill many slots."""
        heavy = [Record(key=i, value=1.0, timestamp=float(i))
                 for i in range(300)]
        heavy.append(Record(key=999, value=100_000.0, timestamp=300.0))
        gf = law_file("wr", (("weight", "value"),), capacity=40)
        gf.offer_many(heavy)
        keys = [r.key for r in gf.sample()]
        assert len(keys) == 40
        assert keys.count(999) > 5  # ~all slots belong to the outlier
        gf.check_invariants()

    def test_scalar_and_batched_admission_agree(self):
        stream = valued_records(self.STREAM)
        scalar_values, batched_values = [], []
        for trial in range(60):
            a = law_file("wr", (("weight", "value"),),
                         capacity=self.CAPACITY, seed=trial)
            for record in stream:
                a.offer(record)
            scalar_values.extend(r.value for r in a.sample())
            b = law_file("wr", (("weight", "value"),),
                         capacity=self.CAPACITY, seed=5_000 + trial)
            b.offer_many(stream)
            batched_values.extend(r.value for r in b.sample())
        p = scipy_stats.ks_2samp(scalar_values, batched_values).pvalue
        assert p > P_MIN


# -- sliding window equivalence -----------------------------------------------


class TestSlidingWindow:
    TRIALS = 150
    STREAM = 400
    WINDOW = 200
    SAMPLE = 20
    CAPACITY = 100

    def _engine(self, seed):
        return law_file("window", (("window", self.WINDOW),
                                   ("sample_size", self.SAMPLE)),
                        capacity=self.CAPACITY, seed=seed)

    def test_sample_is_in_window_and_sized(self):
        gf = self._engine(0)
        gf.offer_many(keyed_records(self.STREAM))
        sample = gf.sample()
        assert len(sample) == self.SAMPLE
        keys = [r.key for r in sample]
        assert len(set(keys)) == self.SAMPLE
        assert min(keys) >= self.STREAM - self.WINDOW
        gf.check_invariants()

    def test_uniform_over_window(self):
        """Every in-window record equally likely: chi-square vs flat."""
        stream = keyed_records(self.STREAM)
        counts: collections.Counter = collections.Counter()
        for trial in range(self.TRIALS):
            gf = self._engine(trial)
            gf.offer_many(stream)
            for record in gf.sample():
                bucket = (record.key
                          - (self.STREAM - self.WINDOW)) // 20
                counts[int(bucket)] += 1
        n_buckets = self.WINDOW // 20
        expected = {b: self.TRIALS * self.SAMPLE / n_buckets
                    for b in range(n_buckets)}
        assert chi_square_p(counts, expected) > P_MIN

    def test_matches_reference(self):
        """Engine vs the direct uniform-subset reference (chi-square)."""
        stream = keyed_records(self.STREAM)
        engine_counts: collections.Counter = collections.Counter()
        reference_counts: collections.Counter = collections.Counter()
        for trial in range(self.TRIALS):
            gf = self._engine(trial)
            gf.offer_many(stream)
            engine_counts.update(
                r.key // 20 for r in gf.sample())
            ref = reference_for("window", window=self.WINDOW,
                                sample_size=self.SAMPLE,
                                seed=10_000 + trial)
            ref.offer_many(stream)
            reference_counts.update(r.key // 20 for r in ref.sample())
        assert two_sample_p(engine_counts, reference_counts) > P_MIN

    def test_short_stream_returns_everything_up_to_s(self):
        gf = self._engine(1)
        gf.offer_many(keyed_records(12))
        assert sorted(r.key for r in gf.sample()) == list(range(12))

    def test_overflow_events_counted_when_budget_too_small(self):
        """A candidate budget far below s*(1+ln(W/s)) must overflow."""
        gf = law_file("window", (("window", 2000), ("sample_size", 55)),
                      capacity=60, buffer_capacity=10)
        gf.offer_many(keyed_records(4000))
        assert gf._law.overflow_events > 0
        assert gf._stats_extra()["law"]["overflow_events"] > 0

    def test_default_sample_size_is_quarter_capacity(self):
        gf = law_file("window", (("window", 1000),),
                      capacity=self.CAPACITY)
        gf.offer_many(keyed_records(2000))
        assert len(gf.sample()) == self.CAPACITY // 4


# -- columnar path for the new laws -------------------------------------------


class TestColumnarLaws:
    @pytest.mark.parametrize("law,params", [
        ("aexpj", (("weight", "value"),)),
        ("wr", (("weight", "value"),)),
        ("window", (("window", 600), ("sample_size", 30))),
    ])
    def test_offer_batch_and_sample_batch(self, law, params):
        gf = law_file(law, params, capacity=100, columnar=True,
                      device="sim")
        records = valued_records(2000)
        for start in range(0, 2000, 250):
            gf.offer_batch(records[start:start + 250])
        batch = gf.sample_batch()
        expected = 30 if law == "window" else 100
        assert len(batch) == expected
        gf.check_invariants()

    def test_columnar_matches_object_distribution(self):
        """Columnar and object A-ExpJ agree by weight class (KS)."""
        stream = valued_records(400)
        object_values, columnar_values = [], []
        for trial in range(60):
            a = law_file("aexpj", (("weight", "value"),), capacity=60,
                         seed=trial)
            a.offer_many(stream)
            object_values.extend(r.value for r in a.sample())
            b = law_file("aexpj", (("weight", "value"),), capacity=60,
                         seed=5_000 + trial, columnar=True)
            b.offer_batch(stream)
            columnar_values.extend(b.sample_batch().values.tolist())
        p = scipy_stats.ks_2samp(object_values, columnar_values).pvalue
        assert p > P_MIN


# -- checkpoint round-trips ---------------------------------------------------


_LAW_CASES = [
    ("uniform", ()),
    ("aexpj", (("weight", "value"),)),
    ("wr", (("weight", "value"),)),
    ("window", (("window", 300), ("sample_size", 20))),
]


class TestCheckpointRoundTrip:
    @given(case=st.sampled_from(_LAW_CASES),
           n1=st.integers(30, 400), n2=st.integers(10, 150),
           seed=st.integers(0, 1_000))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_continuation_is_bit_exact(self, case, n1, n2, seed):
        """Save anywhere in the stream (buffer state included), restore,
        continue: samples, law state, and invariants must match the
        uninterrupted original exactly."""
        law, params = case
        gf = law_file(law, params, capacity=80, seed=seed)
        gf.offer_many(valued_records(n1))
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        blocks = gf.device.n_blocks
        restored = load_geometric_file(
            io.StringIO(sink.getvalue()),
            MemoryBlockDevice(blocks, TEST_BLOCK))
        assert restored._law.state_dict() == gf._law.state_dict()
        more = valued_records(n2, start=n1)
        gf.offer_many(more)
        restored.offer_many(more)
        assert ([r.key for r in gf.sample()]
                == [r.key for r in restored.sample()])
        assert restored._law.state_dict() == gf._law.state_dict()
        gf.check_invariants()
        restored.check_invariants()

    def test_buffer_aux_rides_the_checkpoint(self):
        gf = law_file("aexpj", (("weight", "value"),), capacity=80)
        gf.offer_many(valued_records(83))  # startup leaves buffered rows
        assert gf.buffer.count > 0
        before = gf.buffer.aux_view().copy()
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        restored = load_geometric_file(
            io.StringIO(sink.getvalue()),
            MemoryBlockDevice(gf.device.n_blocks, TEST_BLOCK))
        np.testing.assert_array_equal(restored.buffer.aux_view(), before)

    def test_ledger_aux_survives_including_minus_inf(self):
        gf = law_file("aexpj", (("weight", "value"),), capacity=80)
        gf.offer_many(valued_records(400))
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        restored = load_geometric_file(
            io.StringIO(sink.getvalue()),
            MemoryBlockDevice(gf.device.n_blocks, TEST_BLOCK))
        for original, copy in zip(gf.subsamples, restored.subsamples):
            if original.aux is None:
                assert copy.aux is None
            else:
                np.testing.assert_array_equal(copy.aux, original.aux)

    def test_multi_file_law_round_trip(self):
        config = MultiFileConfig(
            capacity=400, buffer_capacity=25, record_size=40,
            beta_records=4, retain_records=True, law="aexpj",
            law_params=(("weight", "value"),))
        blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
        gf = MultipleGeometricFiles(
            MemoryBlockDevice(blocks, TEST_BLOCK), config, seed=6)
        gf.offer_many(valued_records(3000))
        sink = io.StringIO()
        save_geometric_file(gf, sink)
        restored = load_geometric_file(
            io.StringIO(sink.getvalue()),
            MemoryBlockDevice(blocks, TEST_BLOCK))
        more = valued_records(500, start=3000)
        gf.offer_many(more)
        restored.offer_many(more)
        assert ([r.key for r in gf.sample()]
                == [r.key for r in restored.sample()])


# -- crash replay through the sharded service ---------------------------------


class TestServiceCrashReplay:
    def test_weighted_shards_recover_through_the_journal(self, tmp_path):
        """A law='aexpj' service killed mid-stream must lose nothing:
        journal replay reconstructs every shard's weighted reservoir
        and the per-shard seen counters reconcile exactly."""
        from repro.service import ShardedReservoir

        config = law_config("aexpj", (("weight", "value"),),
                            capacity=100, buffer_capacity=10,
                            admission="always")
        records = valued_records(1200)
        with ShardedReservoir(tmp_path / "svc", config, shards=4,
                              pool="inline", seed=0,
                              checkpoint_batches=2) as service:
            batches = [records[i:i + 40] for i in range(0, 1200, 40)]
            for i, batch in enumerate(batches):
                if i == 10:
                    service.kill_shard(1)
                if i == 20:
                    service.kill_shard(3, hard=True)
                service.offer_batch(batch)
            assert service.stats().seen == 1200
            assert service.recoveries == 2
            assert sum(s.seen for s in service.shard_stats()) == 1200
            merged = service.sample(50)
            assert len(merged) == 50
            assert all(r.key < 1200 for r in merged)


# -- ManagedSample integration ------------------------------------------------


class TestManagedLaws:
    def test_plain_kind_accepts_weight_fn(self, tmp_path):
        def device_factory():
            config = law_config("aexpj", capacity=80)
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            return MemoryBlockDevice(blocks, TEST_BLOCK)

        managed = ManagedSample(
            tmp_path / "aexpj.json", device_factory,
            law_config("aexpj", capacity=80), kind="geometric",
            weight_fn=value_proportional(), checkpoint_every=5)
        managed.offer_many(valued_records(600))
        assert len(managed.sample()) == 80
        managed.close()
        # Restore re-supplies the callable; the law state continues.
        reopened = ManagedSample.restore(
            tmp_path / "aexpj.json", device_factory, kind="geometric",
            weight_fn=value_proportional())
        assert reopened.structure._law.state_dict() == \
            managed.structure._law.state_dict()

    def test_named_spec_restores_without_weight_fn(self, tmp_path):
        def device_factory():
            config = law_config("aexpj", (("weight", "value"),),
                                capacity=80)
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            return MemoryBlockDevice(blocks, TEST_BLOCK)

        managed = ManagedSample(
            tmp_path / "v.json", device_factory,
            law_config("aexpj", (("weight", "value"),), capacity=80),
            kind="geometric", checkpoint_every=0)
        managed.offer_many(valued_records(600))
        managed.close()
        reopened = ManagedSample.restore(tmp_path / "v.json",
                                         device_factory, kind="geometric")
        assert reopened.stats().seen == 600


# -- guards on uniform-only paths ---------------------------------------------


class TestLawGuards:
    def test_count_only_ingest_rejected(self):
        gf = law_file("aexpj", (("weight", "value"),))
        with pytest.raises(TypeError, match="count-only"):
            gf.ingest(100)

    def test_feed_stream_rejected(self):
        gf = law_file("aexpj", (("weight", "value"),),
                      admission="uniform")
        with pytest.raises(ValueError, match="uniform N/i law"):
            feed_stream(keyed_records(100), gf)

    def test_aqp_cache_rejected(self):
        gf = law_file("aexpj", (("weight", "value"),))
        with pytest.raises(TypeError, match="uniform"):
            gf.enable_aqp_cache()

    def test_biased_structures_require_uniform_law(self):
        from repro.core.biased_file import BiasedGeometricFile

        config = law_config("aexpj", capacity=100)
        with pytest.raises(ValueError, match="law='uniform'"):
            BiasedGeometricFile(
                MemoryBlockDevice(10, TEST_BLOCK), config,
                value_proportional())

    def test_weight_fn_must_be_positive(self):
        gf = law_file("aexpj", weight_fn=lambda r: 0.0)
        with pytest.raises(ValueError, match="positive"):
            gf.offer(Record(key=0, value=1.0, timestamp=0.0))


# -- the exp-jump key kernel --------------------------------------------------


class TestExpJumpKeys:
    def test_shapes_and_range(self):
        rng = np.random.default_rng(0)
        keys = exp_jump_keys(np.full(1000, 2.0), rng)
        assert keys.shape == (1000,)
        assert np.all(keys <= 0.0)
        assert np.all(np.isfinite(keys))

    def test_consumes_exactly_n_uniforms(self):
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        exp_jump_keys(np.ones(50), a)
        b.random(50)
        assert a.bit_generator.state == b.bit_generator.state

    def test_key_distribution(self):
        """exp(key * w) recovers u ~ Uniform(0, 1] for any weight."""
        rng = np.random.default_rng(1)
        w = np.repeat([0.5, 1.0, 4.0], 4000)
        u = np.exp(exp_jump_keys(w, rng) * w)
        assert scipy_stats.kstest(u, "uniform").pvalue > P_MIN

    def test_heavier_weights_draw_larger_keys(self):
        rng = np.random.default_rng(2)
        light = exp_jump_keys(np.full(4000, 1.0), rng)
        heavy = exp_jump_keys(np.full(4000, 10.0), rng)
        assert heavy.mean() > light.mean()

    def test_rejects_bad_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            exp_jump_keys(np.array([1.0, 0.0]), rng)
        with pytest.raises(ValueError):
            exp_jump_keys(np.ones((2, 2)), rng)

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert exp_jump_keys(np.empty(0), rng).shape == (0,)


# -- aux-column machinery -----------------------------------------------------


class TestBufferAux:
    def _buffer(self, capacity=10, aux_width=1):
        return SampleBuffer(capacity, random.Random(0),
                            aux_width=aux_width)

    def test_append_requires_matching_aux(self):
        buffer = self._buffer()
        record = Record(key=0, value=1.0, timestamp=0.0)
        with pytest.raises(TypeError):
            buffer.append(record)  # aux-carrying buffer, no aux row
        plain = SampleBuffer(4, random.Random(0))
        with pytest.raises(TypeError):
            plain.append(record, aux=(1.0,))  # aux row, no aux buffer

    def test_aux_requires_retention(self):
        with pytest.raises(ValueError, match="retention"):
            SampleBuffer(4, random.Random(0), retain_records=False,
                         aux_width=1)

    def test_uniform_verbs_refuse_aux_buffers(self):
        buffer = self._buffer()
        record = Record(key=0, value=1.0, timestamp=0.0)
        with pytest.raises(TypeError):
            buffer.add_admitted(record, 100)
        with pytest.raises(TypeError):
            buffer.absorb_many([record], 100)
        with pytest.raises(TypeError):
            buffer.extend([record])

    def test_drain_permutes_aux_with_records(self):
        buffer = self._buffer(capacity=8)
        for i in range(8):
            buffer.append(Record(key=i, value=0.0, timestamp=0.0),
                          aux=(float(i) * 10.0,))
        records, _, count = buffer.drain()
        aux = buffer.take_aux()
        assert count == 8
        assert aux.shape == (8, 1)
        assert [r.key * 10.0 for r in records] == aux[:, 0].tolist()

    def test_take_aux_is_one_shot(self):
        buffer = self._buffer(capacity=2)
        buffer.append(Record(key=0, value=0.0, timestamp=0.0),
                      aux=(1.0,))
        buffer.drain()
        buffer.take_aux()
        with pytest.raises(ValueError):
            buffer.take_aux()

    def test_take_aux_none_for_plain_buffers(self):
        plain = SampleBuffer(4, random.Random(0))
        plain.extend([Record(key=0, value=0.0, timestamp=0.0)])
        plain.drain()
        assert plain.take_aux() is None

    def test_replace_swaps_record_keeps_capacity(self):
        plain = SampleBuffer(4, random.Random(0))
        plain.extend([Record(key=i, value=0.0, timestamp=0.0)
                      for i in range(3)])
        plain.replace(1, Record(key=99, value=0.0, timestamp=0.0))
        assert [r.key for r in plain] == [0, 99, 2]
        with pytest.raises(IndexError):
            plain.replace(3, Record(key=0, value=0.0, timestamp=0.0))


class TestEvictIndices:
    def _flushed_file(self):
        gf = law_file("uniform", capacity=100, buffer_capacity=10)
        gf.offer_many(keyed_records(400))
        return gf

    def test_targeted_eviction_preserves_invariants(self):
        gf = self._flushed_file()
        ledger = next(l for l in gf.subsamples
                      if l.records is not None and l.live >= 3)
        doomed = [ledger.records[0].key, ledger.records[2].key]
        live_before = ledger.live
        ledger.evict_indices(np.array([0, 2]))
        assert ledger.live == live_before - 2
        assert all(r.key not in doomed for r in ledger.records)
        ledger.check_invariant()

    def test_rejects_bad_victim_sets(self):
        gf = self._flushed_file()
        ledger = next(l for l in gf.subsamples
                      if l.records is not None and l.live >= 3)
        with pytest.raises(ValueError):
            ledger.evict_indices(np.array([0, 0]))  # duplicates
        with pytest.raises(ValueError):
            ledger.evict_indices(np.arange(ledger.live + 1))  # too many

    def test_empty_eviction_is_a_no_op(self):
        gf = self._flushed_file()
        ledger = gf.subsamples[0]
        live = ledger.live
        ledger.evict_indices(np.empty(0, dtype=np.int64))
        assert ledger.live == live


# -- stats surface ------------------------------------------------------------


class TestLawStats:
    def test_uniform_law_adds_no_extra(self):
        gf = law_file("uniform")
        assert "law" not in gf._stats_extra()

    @pytest.mark.parametrize("law,params,field", [
        ("aexpj", (("weight", "value"),), "log_threshold"),
        ("wr", (("weight", "value"),), "total_weight"),
        ("window", (("window", 400), ("sample_size", 20)),
         "overflow_events"),
    ])
    def test_law_counters_surface(self, law, params, field):
        gf = law_file(law, params)
        gf.offer_many(valued_records(600))
        extra = gf._stats_extra()["law"]
        assert extra["name"] == law
        assert field in extra
