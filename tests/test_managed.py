"""Tests for the managed (auto-checkpointing) sample wrapper."""

import json
import os

import pytest

from conftest import TEST_BLOCK, small_disk_params
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.managed import ManagedSample
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


def config(**kwargs):
    defaults = dict(capacity=400, buffer_capacity=40, record_size=40,
                    retain_records=True, beta_records=4)
    defaults.update(kwargs)
    return GeometricFileConfig(**defaults)


def factory_for(cfg, cls=GeometricFile):
    blocks = cls.required_blocks(cfg, TEST_BLOCK)
    return lambda: SimulatedBlockDevice(blocks, small_disk_params())


def feed(ms, n, start=0):
    for i in range(start, start + n):
        ms.offer(Record(key=i, value=float(i), timestamp=float(i)))


class TestLifecycle:
    def test_fresh_creation(self, tmp_path):
        cfg = config()
        ms = ManagedSample(tmp_path / "s.json", factory_for(cfg), cfg,
                           checkpoint_every=5)
        assert not ms.restored
        feed(ms, 1000)
        assert ms.disk_size == 400  # delegated observer

    def test_automatic_checkpoints_appear(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=3)
        feed(ms, 1000)
        assert path.exists()
        assert ms.flushes_since_checkpoint < 3
        state = json.loads(path.read_text())
        assert state["kind"] == "GeometricFile"

    def test_restart_resumes_identically(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=1, seed=7)
        feed(ms, 1200)
        ms.checkpoint()
        resumed = ManagedSample(path, factory_for(cfg), cfg,
                                checkpoint_every=1)
        assert resumed.restored
        feed(ms, 600, start=1200)
        feed(resumed, 600, start=1200)
        keys_a = sorted(r.key for r in ms.sample())
        keys_b = sorted(r.key for r in resumed.sample())
        assert keys_a == keys_b

    def test_crash_loses_at_most_the_tail(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=4)
        feed(ms, 900)  # a "crash" here: last checkpoint <= 4 flushes old
        resumed = ManagedSample(path, factory_for(cfg), cfg)
        lost = ms.seen - resumed.seen
        assert 0 <= lost <= 5 * cfg.buffer_capacity
        resumed.check_invariants()

    def test_manual_checkpoint_only(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=0)
        feed(ms, 600)
        assert not path.exists()
        ms.checkpoint()
        assert path.exists()

    def test_count_only_ingest(self, tmp_path):
        cfg = config(retain_records=False, admission="always")
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=2)
        ms.ingest(2000)
        resumed = ManagedSample(path, factory_for(cfg), cfg)
        assert resumed.restored
        resumed.ingest(500)
        resumed.check_invariants()


class TestKinds:
    def test_multi_kind(self, tmp_path):
        cfg = MultiFileConfig(capacity=400, buffer_capacity=40,
                              record_size=40, retain_records=True,
                              beta_records=4, alpha_prime=0.6)
        blocks = MultipleGeometricFiles.required_blocks(cfg, TEST_BLOCK)
        factory = lambda: SimulatedBlockDevice(blocks,  # noqa: E731
                                               small_disk_params())
        path = tmp_path / "m.json"
        ms = ManagedSample(path, factory, cfg, kind="multi",
                           checkpoint_every=2)
        feed(ms, 1500)
        resumed = ManagedSample(path, factory, cfg, kind="multi")
        assert resumed.restored
        assert resumed.n_files == ms.n_files

    def test_biased_kind(self, tmp_path):
        cfg = config()
        weight_fn = lambda r: 1.0 + r.timestamp / 100.0  # noqa: E731
        path = tmp_path / "b.json"
        ms = ManagedSample(path, factory_for(cfg), cfg, kind="biased",
                           weight_fn=weight_fn, checkpoint_every=2)
        feed(ms, 1200)
        resumed = ManagedSample(path, factory_for(cfg), cfg,
                                kind="biased", weight_fn=weight_fn)
        assert resumed.restored
        # The restored totalWeight is the value at the last checkpoint,
        # which trails the live structure by at most a few flushes.
        assert 0 < resumed.total_weight <= ms.total_weight
        assert resumed.total_weight == pytest.approx(ms.total_weight,
                                                     rel=0.2)

    def test_biased_requires_weight_fn(self, tmp_path):
        cfg = config()
        with pytest.raises(ValueError):
            ManagedSample(tmp_path / "x.json", factory_for(cfg), cfg,
                          kind="biased")

    def test_unknown_kind(self, tmp_path):
        cfg = config()
        with pytest.raises(ValueError):
            ManagedSample(tmp_path / "x.json", factory_for(cfg), cfg,
                          kind="btree")

    def test_kind_config_mismatch(self, tmp_path):
        cfg = config()
        with pytest.raises(ValueError):
            ManagedSample(tmp_path / "x.json", factory_for(cfg), cfg,
                          kind="multi")

    def test_checkpoint_kind_mismatch_detected(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg)
        feed(ms, 100)
        ms.checkpoint()
        mcfg = MultiFileConfig(capacity=400, buffer_capacity=40,
                               record_size=40, retain_records=True,
                               beta_records=4, alpha_prime=0.6)
        with pytest.raises(ValueError):
            ManagedSample(path, factory_for(cfg), mcfg, kind="multi")


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        cfg = config()
        ms = ManagedSample(tmp_path / "s.json", factory_for(cfg), cfg,
                           checkpoint_every=1)
        feed(ms, 800)
        leftovers = [p for p in os.listdir(tmp_path)
                     if p.startswith(".checkpoint-")]
        assert leftovers == []


class TestBiasedMultiKind:
    def test_biased_multi_lifecycle(self, tmp_path):
        from repro.core.biased_file import BiasedMultipleGeometricFiles

        cfg = MultiFileConfig(capacity=300, buffer_capacity=30,
                              record_size=40, retain_records=True,
                              beta_records=3, alpha_prime=0.6)
        blocks = BiasedMultipleGeometricFiles.required_blocks(
            cfg, TEST_BLOCK
        )
        factory = lambda: SimulatedBlockDevice(blocks,  # noqa: E731
                                               small_disk_params())
        weight_fn = lambda r: 1.0 + r.timestamp / 500.0  # noqa: E731
        path = tmp_path / "bm.json"
        ms = ManagedSample(path, factory, cfg, kind="biased-multi",
                           weight_fn=weight_fn, checkpoint_every=2)
        feed(ms, 1000)
        resumed = ManagedSample(path, factory, cfg, kind="biased-multi",
                                weight_fn=weight_fn)
        assert resumed.restored
        assert resumed.n_files == ms.n_files
        assert len(list(resumed.items())) == 300
        resumed.check_invariants()


class TestRestoreParity:
    """The checkpoint RNG round-trip is bit-exact (PR 3 satellite).

    A restored sample fed the identical continuation must be
    indistinguishable from the never-interrupted original: same numpy
    and stdlib RNG states after the same draws, and identical reservoir
    contents *in order* at the next flush boundary.  This is the
    property the sharded service's crash recovery stands on -- journal
    replay only reproduces the pre-crash reservoir if every random
    choice replays identically.
    """

    def test_restore_classmethod_requires_checkpoint(self, tmp_path):
        cfg = config()
        with pytest.raises(FileNotFoundError):
            ManagedSample.restore(tmp_path / "missing.json",
                                  factory_for(cfg))

    def test_config_none_requires_checkpoint(self, tmp_path):
        cfg = config()
        with pytest.raises(ValueError):
            ManagedSample(tmp_path / "missing.json", factory_for(cfg),
                          None)

    def test_checkpoint_meta_round_trips(self, tmp_path):
        cfg = config()
        path = tmp_path / "s.json"
        ms = ManagedSample(path, factory_for(cfg), cfg,
                           checkpoint_every=0, seed=3)
        feed(ms, 100)
        ms.checkpoint(meta={"seq": 17})
        restored = ManagedSample.restore(path, factory_for(cfg))
        assert restored.checkpoint_meta == {"seq": 17}

    def test_continuation_is_bit_exact(self, tmp_path):
        import random

        cfg = config()
        path = tmp_path / "s.json"
        live = ManagedSample(path, factory_for(cfg), cfg,
                             checkpoint_every=0, seed=11)
        feed(live, 700)
        live.checkpoint()
        restored = ManagedSample.restore(path, factory_for(cfg),
                                         checkpoint_every=0)
        # The restored RNGs start exactly where the live ones stand...
        assert (restored.structure._np_rng.bit_generator.state
                == live.structure._np_rng.bit_generator.state)
        assert restored.structure._rng.getstate() == live.structure._rng.getstate()
        # ...and stay in lockstep through several more flush boundaries
        # of the identical continuation.
        feed(live, 3 * cfg.buffer_capacity, start=700)
        feed(restored, 3 * cfg.buffer_capacity, start=700)
        assert (restored.structure._np_rng.bit_generator.state
                == live.structure._np_rng.bit_generator.state)
        assert restored.structure._rng.getstate() == live.structure._rng.getstate()
        stats_live, stats_restored = live.stats(), restored.stats()
        assert stats_restored.seen == stats_live.seen
        assert stats_restored.samples_added == stats_live.samples_added
        assert stats_restored.flushes == stats_live.flushes
        # Contents agree in order, not merely as sets: the query-time
        # materialisation below uses equal private RNGs so it cannot
        # perturb the comparison (or the structures' own streams).
        keys_live = [r.key for r in
                     live.sample(rng=random.Random(99))]
        keys_restored = [r.key for r in
                         restored.sample(rng=random.Random(99))]
        assert keys_live == keys_restored
