"""Unit and statistical tests for the multi-file construction (Section 6)."""

import collections
import math

import pytest

from conftest import TEST_BLOCK, make_geometric_file, make_multi_file, small_disk_params
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


def feed(mf, n, start=0):
    for i in range(start, start + n):
        mf.offer(Record(key=i, value=float(i), timestamp=float(i)))


class TestConstruction:
    def test_file_count_follows_section_6(self):
        # alpha = 0.99 (N/B = 100), alpha' = 0.9 -> m = 10.
        mf = make_multi_file(capacity=10000, buffer_capacity=100,
                             alpha_prime=0.9)
        assert mf.n_files == 10
        assert mf.alpha_prime == pytest.approx(0.9)

    def test_single_file_degenerate(self):
        # alpha' == alpha -> one file.
        mf = make_multi_file(capacity=10000, buffer_capacity=100,
                             alpha_prime=0.99)
        assert mf.n_files == 1

    def test_ladder_uses_alpha_prime(self):
        # Compare at a scale where integer rounding cannot truncate the
        # fine-grained alpha ladder (rung sizes stay >= 1).
        mf = make_multi_file(capacity=100_000, buffer_capacity=1000,
                             alpha_prime=0.9, beta_records=50)
        single = make_geometric_file(capacity=100_000,
                                     buffer_capacity=1000,
                                     beta_records=50)
        assert mf.ladder.n_disk_segments < single.ladder.n_disk_segments / 5

    def test_alpha_prime_validation(self):
        with pytest.raises(ValueError):
            MultiFileConfig(capacity=1000, buffer_capacity=100,
                            alpha_prime=1.5)

    def test_device_too_small_rejected(self):
        config = MultiFileConfig(capacity=10000, buffer_capacity=100,
                                 record_size=40, alpha_prime=0.9,
                                 beta_records=10)
        device = SimulatedBlockDevice(4, small_disk_params())
        with pytest.raises(ValueError):
            MultipleGeometricFiles(device, config)

    def test_storage_blowup_close_to_2_minus_alpha_prime(self):
        """Section 6: total disk ~ |R| * (2 - alpha') for the dummies."""
        config = MultiFileConfig(capacity=200_000, buffer_capacity=2000,
                                 record_size=50, alpha_prime=0.9,
                                 beta_records=100)
        blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
        data_bytes = blocks * TEST_BLOCK
        reservoir_bytes = 200_000 * 50
        # 1.1x for the dummies plus slack slots and rounding.
        assert 1.05 * reservoir_bytes <= data_bytes \
            <= 1.45 * reservoir_bytes


class TestCorrectness:
    def test_sample_size_and_uniqueness(self):
        mf = make_multi_file(capacity=2000, buffer_capacity=100)
        feed(mf, 10000)
        mf.check_invariants()
        keys = [r.key for r in mf.sample()]
        assert len(keys) == 2000
        assert len(set(keys)) == 2000

    def test_invariants_hold_throughout(self):
        mf = make_multi_file(capacity=1000, buffer_capacity=80)
        for i in range(6000):
            mf.offer(Record(key=i))
            if i % 500 == 0:
                mf.check_invariants()
        mf.check_invariants()

    def test_uniformity(self):
        """Striping over files must not disturb the sample law."""
        trials, capacity, stream = 250, 200, 1000
        counts = collections.Counter()
        for t in range(trials):
            # alpha = 1 - 20/200 = 0.9; stripe down to alpha' = 0.6
            # (four files) so the dummy rotation is really exercised.
            mf = make_multi_file(capacity=capacity, buffer_capacity=20,
                                 alpha_prime=0.6, seed=4000 + t)
            feed(mf, stream)
            counts.update(r.key for r in mf.sample())
        expected = trials * capacity / stream
        sigma = math.sqrt(trials * (capacity / stream)
                          * (1 - capacity / stream))
        for key in range(stream):
            assert abs(counts[key] - expected) < 5 * sigma, key

    def test_mid_flush_sample_is_full_size(self):
        mf = make_multi_file(capacity=1000, buffer_capacity=80,
                             admission="always")
        feed(mf, 1040)
        sample = mf.sample()
        assert len({r.key for r in sample}) == len(sample) == 1000

    def test_count_only_mode(self):
        mf = make_multi_file(capacity=2000, buffer_capacity=100,
                             retain_records=False, admission="always")
        mf.ingest(20000)
        mf.check_invariants()
        assert mf.disk_size == 2000
        with pytest.raises(TypeError):
            mf.sample()


class TestRoundRobin:
    def test_steady_flushes_rotate_over_files(self):
        mf = make_multi_file(capacity=2000, buffer_capacity=100,
                             admission="always", alpha_prime=0.9)
        feed(mf, 2000 + 100 * mf.n_files * 2)
        # After two full rotations every file holds a steady subsample.
        newest_idents = [file.subsamples[0].ident for file in mf.files]
        assert len(set(newest_idents)) == mf.n_files

    def test_one_flush_touches_one_file(self):
        mf = make_multi_file(capacity=4000, buffer_capacity=200,
                             retain_records=False, admission="always",
                             alpha_prime=0.9)
        mf.ingest(4000)
        # Per steady flush, segment writes target a single sub-file's
        # block range.  Track the device head's block addresses through
        # one flush by diffing per-file write counts -- approximated
        # here by checking the dummy rotation advanced exactly once.
        target = mf.files[mf.flushes % mf.n_files]
        dummy_before = list(target.dummy_slots)
        mf.ingest(200)
        assert target.dummy_slots != dummy_before

    def test_dummy_slots_always_complete(self):
        mf = make_multi_file(capacity=2000, buffer_capacity=100,
                             admission="always")
        feed(mf, 8000)
        for file in mf.files:
            assert len(file.dummy_slots) == mf.ladder.n_disk_segments


class TestSpeedup:
    def test_multi_needs_far_fewer_seeks_than_single(self):
        """The whole point of Section 6."""
        single = make_geometric_file(capacity=20000, buffer_capacity=200,
                                     retain_records=False,
                                     admission="always", seed=1)
        single.ingest(100_000)
        multi = make_multi_file(capacity=20000, buffer_capacity=200,
                                retain_records=False, admission="always",
                                alpha_prime=0.9, seed=1)
        multi.ingest(100_000)
        assert multi.flushes == single.flushes
        single_seeks = single.device.model.stats.seeks
        multi_seeks = multi.device.model.stats.seeks
        # m = 100 here; the seek reduction should be at least ~3x even
        # at this tiny scale (log-scale segment counts compress it).
        assert multi_seeks * 3 < single_seeks
        assert multi.clock < single.clock

    def test_segments_per_flush_matches_ladder(self):
        mf = make_multi_file(capacity=2000, buffer_capacity=100,
                             retain_records=False, admission="always")
        mf.ingest(2000)
        seeks_before = mf.device.model.stats.seeks
        flushes_before = mf.flushes
        mf.ingest(1000)
        flushes = mf.flushes - flushes_before
        per_flush = (mf.device.model.stats.seeks - seeks_before) / flushes
        segments = mf.ladder.n_disk_segments
        assert segments <= per_flush <= 6 * segments + 4
