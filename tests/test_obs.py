"""Tests for the observability subsystem (``repro.obs``).

Covers the metrics registry primitives, the trace ring buffer, the
unified ``stats()`` protocol, bit-exact reconciliation between mirrored
registry counters and ``DiskStats``, trace-event ordering at flush
boundaries, the zero-cost guarantee (instrumentation must not move the
simulated clock), and the deprecation shims for the old accessors.
"""

import warnings

import pytest

from conftest import TEST_BLOCK, make_geometric_file, small_disk_params
from repro.bench import ALTERNATIVE_NAMES, experiment_1, run_until
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.managed import ManagedSample
from repro.core.zonemap import ZoneMapIndex
from repro.obs import (
    Counter,
    EVENT_KINDS,
    Gauge,
    Histogram,
    MetricsRegistry,
    ReservoirStats,
    Timer,
    TraceSink,
    reset_deprecation_warnings,
)
from repro.storage.device import (
    FileBlockDevice,
    MemoryBlockDevice,
    SimulatedBlockDevice,
)
from repro.storage.records import Record
from repro.storage.striping import StripedBlockDevice

pytestmark = pytest.mark.obs

#: The eight mirrored device counters and the DiskStats fields they track.
DISK_FIELDS = ("seeks", "reads", "writes", "blocks_read", "blocks_written",
               "sequential_blocks", "seek_seconds", "transfer_seconds")


def feed(reservoir, n, start=0):
    for i in range(start, start + n):
        reservoir.offer(Record(key=i, value=float(i), timestamp=float(i)))


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_accumulates_and_rejects_negatives(self):
        c = Counter("n", {})
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        c.reset()
        assert c.value == 0

    def test_gauge_sets_and_moves(self):
        g = Gauge("g", {})
        g.set(10)
        g.inc(-3)
        assert g.value == 7

    def test_histogram_summary_stats(self):
        h = Histogram("h", {})
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["total"] == 6.0
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == pytest.approx(2.0)

    def test_timer_context_manager_observes(self):
        t = Timer("t", {})
        with t:
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_registry_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        a = reg.counter("disk.seeks", structure="geo file")
        b = reg.counter("disk.seeks", structure="geo file")
        assert a is b
        other = reg.counter("disk.seeks", structure="scan")
        assert other is not a
        assert len(reg) == 2

    def test_registry_rejects_kind_conflicts(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_registry_value_defaults_to_zero(self):
        reg = MetricsRegistry()
        assert reg.value("never.registered", structure="nope") == 0.0

    def test_registry_as_dict_round_trips_through_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a", structure="s").inc(4)
        reg.gauge("b").set(1.5)
        payload = json.loads(reg.to_json())
        assert {m["name"] for m in payload["metrics"]} == {"a", "b"}


class TestTraceSink:
    def test_ring_buffer_drops_oldest(self):
        sink = TraceSink(capacity=4)
        for i in range(6):
            sink.emit("flush", "geo file", float(i), index=i)
        assert sink.total_emitted == 6
        assert sink.dropped == 2
        events = sink.events()
        assert len(events) == 4
        assert [e.fields["index"] for e in events] == [2, 3, 4, 5]

    def test_emit_rejects_unknown_kind(self):
        sink = TraceSink()
        with pytest.raises(ValueError):
            sink.emit("not-a-kind", "geo file", 0.0)

    def test_filtering_and_counts(self):
        sink = TraceSink()
        sink.emit("flush", "a", 0.0)
        sink.emit("flush", "b", 1.0)
        sink.emit("checkpoint", "a", 2.0)
        assert len(sink.events(kind="flush")) == 2
        assert len(sink.events(source="a")) == 2
        assert sink.counts() == {"flush": 2, "checkpoint": 1}

    def test_jsonl_streaming(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            sink = TraceSink(stream=fh)
            sink.emit("flush", "geo file", 1.25, index=0, records=10)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["kind"] == "flush"
        assert event["source"] == "geo file"
        assert event["fields"]["records"] == 10


# ---------------------------------------------------------------------------
# The unified stats() protocol
# ---------------------------------------------------------------------------

class TestStatsProtocol:
    def test_every_alternative_answers_stats(self):
        spec = experiment_1(scale=0)
        for name in ALTERNATIVE_NAMES:
            reservoir = spec.make(name)
            reservoir.ingest(1000)
            st = reservoir.stats()
            assert isinstance(st, ReservoirStats)
            assert st.name == name
            assert st.capacity == spec.capacity
            assert st.seen == 1000
            assert st.io is not None
            d = st.as_dict()
            assert d["name"] == name
            assert "io" in d

    def test_devices_answer_stats(self, tmp_path):
        devices = [
            MemoryBlockDevice(8, block_size=TEST_BLOCK),
            SimulatedBlockDevice(8, small_disk_params()),
            FileBlockDevice(tmp_path / "dev.bin", 8, block_size=TEST_BLOCK),
            StripedBlockDevice(8, n_disks=2, params=small_disk_params()),
        ]
        for device in devices:
            device.write_blocks(0, b"\0" * device.block_size)
            device.read_blocks(0, 1)
            st = device.stats()
            assert st.blocks_written >= 1
            assert st.blocks_read >= 1

    def test_managed_sample_delegates_stats(self, tmp_path):
        cfg = GeometricFileConfig(capacity=400, buffer_capacity=40,
                                  record_size=40, retain_records=True,
                                  beta_records=4)
        blocks = GeometricFile.required_blocks(cfg, TEST_BLOCK)
        ms = ManagedSample(
            tmp_path / "s.json",
            lambda: SimulatedBlockDevice(blocks, small_disk_params()),
            cfg, checkpoint_every=5,
        )
        feed(ms, 500)
        st = ms.stats()
        assert st.name == "geo file"
        assert st.seen == 500

    def test_stats_extra_is_read_only(self):
        gf = make_geometric_file(retain_records=False)
        gf.ingest(500)
        extra = gf.stats().extra
        assert extra["alpha"] == gf.alpha
        with pytest.raises(TypeError):
            extra["alpha"] = 0.0


# ---------------------------------------------------------------------------
# Reconciliation: mirrored counters == DiskStats, bit for bit
# ---------------------------------------------------------------------------

class TestReconciliation:
    def test_registry_exactly_matches_disk_stats_across_alternatives(self):
        spec = experiment_1(scale=0)
        registry = MetricsRegistry()
        trace = TraceSink()
        for name in ALTERNATIVE_NAMES:
            reservoir = spec.make(name)
            reservoir.instrument(registry, trace)
            run_until(reservoir, spec.horizon_seconds)
            io = reservoir.stats().io
            for field in DISK_FIELDS:
                mirrored = registry.value(f"disk.{field}", structure=name)
                expected = getattr(io, field)
                # Bit-exact, including the float second totals: the
                # mirror applies the same increments in the same order.
                assert mirrored == expected, (name, field)
            assert (registry.value("events.flush", structure=name)
                    == reservoir.flushes)

    def test_striped_volume_sums_all_spindles(self):
        device = StripedBlockDevice(64, n_disks=4,
                                    params=small_disk_params())
        registry = MetricsRegistry()
        device.instrument(registry, name="striped")
        for i in range(64):
            device.write_blocks(i, b"\0" * device.block_size)
        st = device.stats()
        assert st.blocks_written == 64
        assert registry.value("disk.blocks_written",
                              structure="striped") == 64
        assert registry.value("disk.seek_seconds",
                              structure="striped") == st.seek_seconds


# ---------------------------------------------------------------------------
# Trace ordering and the zero-cost guarantee
# ---------------------------------------------------------------------------

class TestTraceOrdering:
    def test_geo_file_overwrites_precede_their_flush(self):
        gf = make_geometric_file(capacity=2000, buffer_capacity=100,
                                 retain_records=False)
        registry = MetricsRegistry()
        trace = TraceSink()
        gf.instrument(registry, trace)
        gf.ingest(20_000)
        events = trace.events(source="geo file")
        assert events, "geo file emitted no trace events"

        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        clocks = [e.clock for e in events]
        assert clocks == sorted(clocks)
        assert all(e.kind in EVENT_KINDS for e in events)

        # Within each steady flush, slot overwrites are traced before
        # the flush-completion event itself.  (Startup flushes write one
        # contiguous region instead, so they emit no overwrites.)
        flush_count = 0
        steady_count = 0
        overwrites_since_flush = 0
        for event in events:
            if event.kind == "segment_overwrite":
                overwrites_since_flush += 1
            elif event.kind == "flush":
                if event.fields["phase"] == "steady":
                    assert overwrites_since_flush > 0, (
                        f"flush #{event.fields['index']} traced with no "
                        "preceding segment_overwrite"
                    )
                    steady_count += 1
                else:
                    assert overwrites_since_flush == 0
                overwrites_since_flush = 0
                flush_count += 1
        assert flush_count == gf.flushes
        assert steady_count > 0
        assert registry.value("events.segment_overwrite",
                              structure="geo file") > 0

    def test_instrumentation_does_not_move_the_clock(self):
        plain = make_geometric_file(seed=11, retain_records=False)
        observed = make_geometric_file(seed=11, retain_records=False)
        registry = MetricsRegistry()
        observed.instrument(registry, TraceSink())
        plain.ingest(25_000)
        observed.ingest(25_000)
        assert observed._clock() == plain._clock()
        assert observed.device.stats() == plain.device.stats()
        assert observed.stats().seen == plain.stats().seen


# ---------------------------------------------------------------------------
# Deprecation shims and the proxy bugfix
# ---------------------------------------------------------------------------

class TestDeprecations:
    def test_old_reservoir_accessors_warn_but_work(self):
        gf = make_geometric_file(retain_records=False)
        gf.ingest(500)
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="stats"):
            assert gf.seen == gf.stats().seen
        with pytest.warns(DeprecationWarning, match="stats"):
            assert gf.samples_added == gf.stats().samples_added
        with pytest.warns(DeprecationWarning, match="stats"):
            assert gf.clock == gf.stats().clock

    def test_warnings_fire_once_per_process(self):
        gf = make_geometric_file()
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            gf.seen
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            gf.seen  # second read stays silent

    def test_striped_combined_stats_shim(self):
        device = StripedBlockDevice(8, n_disks=2,
                                    params=small_disk_params())
        device.write_blocks(0, b"\0" * device.block_size)
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="stats"):
            assert device.combined_stats() == device.stats()

    def test_zonemap_last_stats_shim(self):
        gf = make_geometric_file()
        feed(gf, 2000)
        index = ZoneMapIndex(gf)
        list(index.query(0.0, 50.0))
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="stats"):
            assert index.last_stats is index.stats()

    def test_managed_getattr_names_both_classes(self, tmp_path):
        cfg = GeometricFileConfig(capacity=400, buffer_capacity=40,
                                  record_size=40, retain_records=True,
                                  beta_records=4)
        blocks = GeometricFile.required_blocks(cfg, TEST_BLOCK)
        ms = ManagedSample(
            tmp_path / "s.json",
            lambda: SimulatedBlockDevice(blocks, small_disk_params()),
            cfg,
        )
        with pytest.raises(AttributeError) as excinfo:
            ms.definitely_not_an_attribute
        message = str(excinfo.value)
        assert "ManagedSample" in message
        assert "GeometricFile" in message
        assert "definitely_not_an_attribute" in message
