"""Tests for online aggregation and ripple joins (Section 9)."""

import math
import random
import statistics

import pytest

from repro.estimate import OnlineAggregator, RippleJoin, online_avg
from repro.storage.records import Record


class TestOnlineAggregator:
    def test_welford_matches_batch_statistics(self):
        rng = random.Random(0)
        data = [rng.gauss(5.0, 2.0) for _ in range(500)]
        agg = OnlineAggregator()
        agg.observe_many(data)
        assert agg.avg().value == pytest.approx(statistics.mean(data))
        assert agg.variance == pytest.approx(statistics.variance(data))

    def test_interval_shrinks(self):
        rng = random.Random(1)
        agg = OnlineAggregator()
        widths = []
        for n in range(1, 10_001):
            agg.observe(rng.gauss(0.0, 1.0))
            if n in (100, 1000, 10_000):
                widths.append(agg.avg().standard_error)
        assert widths[0] > 2 * widths[1] > 4 * widths[2]

    def test_sum_requires_population(self):
        agg = OnlineAggregator()
        agg.observe_many([1.0, 2.0])
        with pytest.raises(ValueError):
            agg.sum()

    def test_sum_scales(self):
        agg = OnlineAggregator(population_size=1000)
        agg.observe_many([2.0, 4.0])
        assert agg.sum().value == pytest.approx(3000.0)

    def test_needs_two_observations(self):
        agg = OnlineAggregator()
        agg.observe(1.0)
        with pytest.raises(ValueError):
            agg.avg()

    def test_coverage(self):
        """The running interval covers the truth ~ the stated rate."""
        hits = 0
        for t in range(300):
            rng = random.Random(t)
            agg = OnlineAggregator()
            agg.observe_many(rng.gauss(10.0, 3.0) for _ in range(200))
            if agg.avg().interval(0.95).contains(10.0):
                hits += 1
        assert hits / 300 >= 0.9


class TestOnlineAvgHelper:
    def test_snapshots_and_final_value(self):
        records = [Record(key=i, value=float(i % 7)) for i in range(1000)]
        snaps = list(online_avg(records, every=200,
                                rng=random.Random(0)))
        assert snaps[-1][0] == 1000
        truth = statistics.mean(r.value for r in records)
        assert snaps[-1][1].value == pytest.approx(truth)
        # Interval widths shrink monotonically-ish across snapshots.
        assert snaps[-1][1].standard_error < snaps[0][1].standard_error

    def test_early_snapshot_is_already_close(self):
        """The whole point of online aggregation: stop early."""
        rng = random.Random(5)
        records = [Record(key=i, value=rng.gauss(50.0, 5.0))
                   for i in range(20_000)]
        truth = statistics.mean(r.value for r in records)
        first = next(iter(online_avg(records, every=500,
                                     rng=random.Random(1))))
        n_seen, estimate = first
        assert n_seen == 500
        assert estimate.interval(0.999).contains(truth)

    def test_bad_cadence(self):
        with pytest.raises(ValueError):
            list(online_avg([Record(key=0)], every=0))


def make_join_inputs(n_left=400, n_right=600, n_keys=50, seed=0):
    rng = random.Random(seed)
    left = [Record(key=i, value=float(rng.randrange(n_keys)))
            for i in range(n_left)]
    right = [Record(key=10_000 + i, value=float(rng.randrange(n_keys)))
             for i in range(n_right)]
    true_count = 0
    right_by_key = {}
    for r in right:
        right_by_key.setdefault(r.value, 0)
        right_by_key[r.value] += 1
    for l in left:
        true_count += right_by_key.get(l.value, 0)
    return left, right, true_count


class TestRippleJoin:
    def key(self, record):
        return record.value

    def test_exhaustive_run_is_exact(self):
        """Running the ripple to completion computes the exact join."""
        left, right, truth = make_join_inputs()
        ripple = RippleJoin(left, right, self.key, self.key,
                            rng=random.Random(0))
        ripple.run()
        assert ripple.exhausted
        assert ripple.estimate_count().value == pytest.approx(truth)

    def test_partial_estimates_converge(self):
        left, right, truth = make_join_inputs(seed=3)
        ripple = RippleJoin(left, right, self.key, self.key,
                            rng=random.Random(1))
        errors = []
        for steps, estimate in ripple.snapshots(every=50):
            errors.append(abs(estimate.value - truth) / truth)
        assert errors[-1] < 0.01
        assert statistics.mean(errors[:2]) >= errors[-1]

    def test_estimates_are_unbiased_across_orders(self):
        """At a fixed partial step, the estimate is right on average."""
        left, right, truth = make_join_inputs(seed=7)
        estimates = []
        for t in range(60):
            ripple = RippleJoin(left, right, self.key, self.key,
                                rng=random.Random(t))
            ripple.run(steps=100)
            estimates.append(ripple.estimate_count().value)
        assert statistics.mean(estimates) == pytest.approx(truth,
                                                           rel=0.1)

    def test_population_scale_up(self):
        """Samples standing for larger relations scale the estimate."""
        left, right, truth = make_join_inputs()
        ripple = RippleJoin(left, right, self.key, self.key,
                            left_population=4000, right_population=6000,
                            rng=random.Random(0))
        ripple.run()
        expected = truth * (4000 / 400) * (6000 / 600)
        assert ripple.estimate_count().value == pytest.approx(expected)

    def test_sum_over_join(self):
        left, right, _ = make_join_inputs(seed=2)
        ripple = RippleJoin(
            left, right, self.key, self.key,
            value=lambda l, r: 2.0, rng=random.Random(0),
        )
        ripple.run()
        count = ripple.estimate_count().value
        assert ripple.estimate_sum().value == pytest.approx(2.0 * count)

    def test_sum_requires_value_function(self):
        left, right, _ = make_join_inputs()
        ripple = RippleJoin(left, right, self.key, self.key,
                            rng=random.Random(0))
        ripple.run(steps=10)
        with pytest.raises(ValueError):
            ripple.estimate_sum()

    def test_estimate_before_stepping_rejected(self):
        left, right, _ = make_join_inputs()
        ripple = RippleJoin(left, right, self.key, self.key)
        with pytest.raises(ValueError):
            ripple.estimate_count()

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            RippleJoin([], [Record(key=0)], self.key, self.key)

    def test_interval_coverage_is_reasonable(self):
        """The approximate SE yields sane (if conservative) coverage."""
        left, right, truth = make_join_inputs(seed=11)
        hits = 0
        trials = 80
        for t in range(trials):
            ripple = RippleJoin(left, right, self.key, self.key,
                                rng=random.Random(1000 + t))
            ripple.run(steps=150)
            if ripple.estimate_count().interval(0.95).contains(truth):
                hits += 1
        assert hits / trials >= 0.85
