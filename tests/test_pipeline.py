"""Tests for the pipelined flush engine (:mod:`repro.pipeline`).

The load-bearing property is the determinism contract: a structure run
with ``pipeline=True`` must be bit-exact -- samples, DiskStats, device
clock -- with its synchronous twin under the same scheduler, because
the writer thread only moves already-scheduled ops and never touches
RNG or structure state.  The twin-parity matrix below checks that for
every structure on every device kind.

A conftest alarm guard (see ``tests/conftest.py``) turns any deadlock
in these threaded tests into a loud failure instead of a hung CI job.
"""

from __future__ import annotations

import pytest

from conftest import TEST_BLOCK, keyed_records, small_disk_params
from repro.baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from repro.core.biased_file import BiasedGeometricFile
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.managed import ManagedSample
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.pipeline import (
    ElevatorScheduler,
    FifoScheduler,
    FlushEngine,
    FlushPlan,
    PipelineWriteError,
    make_scheduler,
)
from repro.storage.buffer_pool import LRUBufferPool
from repro.storage.device import MemoryBlockDevice, SimulatedBlockDevice
from repro.storage.disk_model import DiskModel

pytestmark = pytest.mark.pipeline

DEVICE_KINDS = ("memory", "sim", "sim-retain")
STRUCTURES = ("geometric", "multi", "biased", "scan", "local", "vm")


def make_device(kind: str, blocks: int):
    if kind == "memory":
        return MemoryBlockDevice(blocks, block_size=TEST_BLOCK)
    return SimulatedBlockDevice(blocks, small_disk_params(),
                                retain_data=(kind == "sim-retain"))


def device_fingerprint(device) -> tuple:
    """(DiskStats snapshot, clock) -- the bit-exactness witnesses."""
    return device.stats(), getattr(device, "clock", 0.0)


def build_structure(name: str, device_kind: str, *, pipeline: bool,
                    io_scheduler: str = "elevator", seed: int = 7):
    if name in ("geometric", "biased"):
        config = GeometricFileConfig(
            capacity=600, buffer_capacity=60, record_size=40,
            beta_records=8, retain_records=True,
            pipeline=pipeline, io_scheduler=io_scheduler,
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        device = make_device(device_kind, blocks)
        if name == "biased":
            weight = lambda r: 1.0 + (r.key % 3)  # noqa: E731
            return BiasedGeometricFile(device, config, weight,
                                       seed=seed), device
        return GeometricFile(device, config, seed=seed), device
    if name == "multi":
        config = MultiFileConfig(
            capacity=600, buffer_capacity=60, record_size=40,
            beta_records=8, retain_records=True, alpha_prime=0.9,
            pipeline=pipeline, io_scheduler=io_scheduler,
        )
        blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
        device = make_device(device_kind, blocks)
        return MultipleGeometricFiles(device, config, seed=seed), device
    config = DiskReservoirConfig(
        capacity=500, buffer_capacity=50, record_size=40,
        retain_records=True, pool_blocks=8,
        pipeline=pipeline, io_scheduler=io_scheduler,
    )
    cls = {"scan": ScanReservoir, "local": LocalOverwriteReservoir,
           "vm": VirtualMemoryReservoir}[name]
    blocks = cls.required_blocks(config, TEST_BLOCK)
    device = make_device(device_kind, blocks)
    return cls(device, config), device


def drive(structure, n: int = 2000) -> None:
    for record in keyed_records(n):
        structure.offer(record)


class TestSchedulers:
    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("elevator"), ElevatorScheduler)
        with pytest.raises(ValueError):
            make_scheduler("btrfs")

    def test_fifo_preserves_recorded_order(self):
        plan = FlushPlan()
        plan.write(30, 2)
        plan.write(10, 1, overhead=2)
        plan.read(5, 1)
        plan.seek()
        ops, summary = FifoScheduler().schedule(plan, None)
        assert ops == list(plan.ops)
        assert summary["merged"] == 0
        assert summary["bursts_out"] == plan.n_writes == 2

    def test_elevator_sorts_and_merges_adjacent(self):
        plan = FlushPlan()
        plan.write(10, 2)   # out of order on purpose
        plan.write(0, 2)
        plan.write(2, 3)    # exactly adjacent to (0, 2)
        ops, summary = ElevatorScheduler(bridge_blocks=0).schedule(plan,
                                                                   None)
        writes = [op for op in ops if op[0] == "write"]
        assert [(op[1], op[2]) for op in writes] == [(0, 5), (10, 2)]
        assert summary["merged"] == 1
        assert summary["bursts_out"] == 2
        assert summary["extents_in"] == 3

    def test_elevator_bridges_small_gaps_with_padding(self):
        plan = FlushPlan()
        plan.write(0, 2)
        plan.write(5, 1)  # gap of 3 blocks
        ops, summary = ElevatorScheduler(bridge_blocks=4).schedule(plan,
                                                                   None)
        writes = [op for op in ops if op[0] == "write"]
        assert [(op[1], op[2]) for op in writes] == [(0, 6)]
        assert summary["bridged_blocks"] == 3
        assert summary["merged"] == 1

    def test_elevator_respects_bridge_limit(self):
        plan = FlushPlan()
        plan.write(0, 2)
        plan.write(9, 1)  # gap of 7 > bridge 4
        ops, _ = ElevatorScheduler(bridge_blocks=4).schedule(plan, None)
        writes = [op for op in ops if op[0] == "write"]
        assert len(writes) == 2

    def test_elevator_keeps_reads_after_writes_and_hoists_seeks(self):
        plan = FlushPlan()
        plan.seek(2)
        plan.read(50, 1)
        plan.write(40, 1)
        plan.read(7, 2)
        ops, _ = ElevatorScheduler(bridge_blocks=0).schedule(plan, None)
        kinds = [op[0] for op in ops]
        assert kinds == ["write", "read", "read", "seek"]
        reads = [op for op in ops if op[0] == "read"]
        assert [op[1] for op in reads] == [50, 7]  # recorded order
        assert ops[-1] == ("seek", 2)

    def test_merged_burst_charges_max_overhead_once(self):
        plan = FlushPlan()
        plan.write(0, 1, overhead=2)
        plan.write(1, 1, overhead=1)
        ops, summary = ElevatorScheduler(bridge_blocks=0).schedule(plan,
                                                                   None)
        writes = [op for op in ops if op[0] == "write"]
        assert len(writes) == 1
        assert writes[0][4] == 2  # max of the members, billed once
        assert summary["overhead_saved"] == 1

    def test_clamped_write_still_charges_overhead(self):
        # The legacy write_slot quirk: a slot clamped to zero blocks
        # still pays its extra boundary seeks.
        plan = FlushPlan()
        plan.write(10, 0, overhead=2)
        assert plan.ops == [("seek", 2)]
        assert plan.n_seeks == 2


class TestEngineTimeline:
    def _plan(self, block: int = 0, blocks: int = 100) -> FlushPlan:
        plan = FlushPlan()
        plan.write(block, blocks)
        return plan

    def _disk_seconds_per_plan(self) -> float:
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device)
        engine.submit(self._plan())
        return engine.disk_seconds

    def test_synchronous_elapsed_is_fill_plus_disk(self):
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device)
        engine.submit(self._plan(), fill_seconds=1.0)
        engine.submit(self._plan(), fill_seconds=1.0)
        d = engine.disk_seconds / 2
        assert engine.elapsed_seconds == pytest.approx(2 * (1.0 + d))
        assert engine.stall_seconds == 0.0

    def test_pipelined_elapsed_overlaps_fill_with_previous_disk(self):
        d = self._disk_seconds_per_plan()
        fill = 2 * d  # fill-dominated: disk fully hidden
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device, pipeline=True)
        for _ in range(3):
            engine.submit(self._plan(), fill_seconds=fill)
        engine.barrier()
        # fill_1 + max(fill, d) * 2 + trailing d at the barrier
        assert engine.elapsed_seconds == pytest.approx(3 * fill + d)
        assert engine.stall_seconds == pytest.approx(d)  # barrier only
        assert engine.disk_seconds == pytest.approx(3 * d)

    def test_pipelined_stalls_when_disk_dominates(self):
        d = self._disk_seconds_per_plan()
        fill = d / 2
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device, pipeline=True)
        for _ in range(3):
            engine.submit(self._plan(), fill_seconds=fill)
        engine.barrier()
        assert engine.elapsed_seconds == pytest.approx(fill + 3 * d)
        assert engine.stall_seconds == pytest.approx(2 * (d - fill) + d)

    def test_barrier_is_idempotent(self):
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device, pipeline=True)
        engine.submit(self._plan(), fill_seconds=0.5)
        engine.barrier()
        elapsed = engine.elapsed_seconds
        engine.barrier()
        assert engine.elapsed_seconds == elapsed
        assert engine.queue_depth == 0

    def test_close_drains_and_engine_restarts_lazily(self):
        device = SimulatedBlockDevice(4096, small_disk_params())
        engine = FlushEngine(device, pipeline=True)
        engine.submit(self._plan())
        engine.close()
        assert engine.queue_depth == 0
        engine.submit(self._plan())  # lazily restarts the writer
        engine.barrier()
        assert engine.executed == 2

    def test_for_config_defaults_to_synchronous_fifo(self):
        device = SimulatedBlockDevice(64, small_disk_params())
        engine = FlushEngine.for_config(device, object())
        assert engine.pipeline is False
        assert isinstance(engine.scheduler, FifoScheduler)

    def test_stream_past_charges_transfer_only(self):
        model = DiskModel(small_disk_params())
        model.read(0)  # place the head
        before = model.stats.snapshot()
        elapsed = model.stream_past(8)
        assert elapsed == pytest.approx(
            8 * model.params.block_transfer_time)
        after = model.stats.snapshot()
        assert after.seeks == before.seeks
        assert after.reads == before.reads
        assert after.writes == before.writes
        assert after.transfer_seconds == pytest.approx(
            before.transfer_seconds + elapsed)
        with pytest.raises(ValueError):
            model.stream_past(0)


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("device_kind", DEVICE_KINDS)
def test_twin_engine_parity(structure, device_kind):
    """pipeline=True must be bit-exact with its synchronous twin."""
    sync, sync_dev = build_structure(structure, device_kind,
                                     pipeline=False)
    piped, piped_dev = build_structure(structure, device_kind,
                                       pipeline=True)
    drive(sync)
    drive(piped)
    assert sorted(r.key for r in sync.sample()) \
        == sorted(r.key for r in piped.sample())
    sync.close()
    piped.close()
    assert device_fingerprint(sync_dev) == device_fingerprint(piped_dev)
    assert piped.stats().extra["pipeline"]["pipelined"] is True


@pytest.mark.parametrize("io_scheduler", ("fifo", "elevator"))
def test_twin_engine_parity_per_scheduler(io_scheduler):
    """Parity holds under either scheduler (same scheduler both sides)."""
    sync, sync_dev = build_structure("geometric", "sim", pipeline=False,
                                     io_scheduler=io_scheduler)
    piped, piped_dev = build_structure("geometric", "sim", pipeline=True,
                                       io_scheduler=io_scheduler)
    drive(sync, 3000)
    drive(piped, 3000)
    sync.close()
    piped.close()
    assert device_fingerprint(sync_dev) == device_fingerprint(piped_dev)


def test_elevator_never_beats_fifo_on_seeks_multi():
    """Address sorting strictly reduces the multi-file seek bill."""
    fifo, fifo_dev = build_structure("multi", "sim", pipeline=False,
                                     io_scheduler="fifo")
    elev, elev_dev = build_structure("multi", "sim", pipeline=False,
                                     io_scheduler="elevator")
    drive(fifo, 3000)
    drive(elev, 3000)
    assert sorted(r.key for r in fifo.sample()) \
        == sorted(r.key for r in elev.sample())
    assert elev_dev.stats().seeks < fifo_dev.stats().seeks


def test_stats_exposes_engine_counters():
    structure, _ = build_structure("geometric", "sim", pipeline=True)
    drive(structure)
    extra = structure.stats().extra["pipeline"]
    assert extra["submitted"] == extra["executed"] > 0
    assert extra["scheduler"] == "elevator"
    assert extra["merged_extents"] >= 0
    structure.close()


def test_trace_events_emitted_when_instrumented():
    from repro.obs import MetricsRegistry, TraceSink

    structure, _ = build_structure("geometric", "sim", pipeline=True)
    registry = MetricsRegistry()
    trace = TraceSink()
    structure.instrument(registry, trace)
    drive(structure)
    structure.close()
    counts = trace.counts()
    assert counts.get("flush_pipelined", 0) > 0
    assert counts.get("io_coalesced", 0) > 0


class FaultyDevice(SimulatedBlockDevice):
    """Simulated device whose write charges fail on demand."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fail = False

    def charge_write(self, block: int, n_blocks: int) -> bool:
        if self.fail:
            raise IOError("injected write failure")
        return super().charge_write(block, n_blocks)


def make_faulty_geometric():
    config = GeometricFileConfig(
        capacity=600, buffer_capacity=60, record_size=40, beta_records=8,
        retain_records=True, pipeline=True,
    )
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    device = FaultyDevice(blocks, small_disk_params())
    return GeometricFile(device, config, seed=7), device


def _offer_until_error(structure, records) -> PipelineWriteError:
    with pytest.raises(PipelineWriteError) as info:
        for record in records:
            structure.offer(record)
    return info.value


class TestWriterFaults:
    def test_fault_surfaces_on_next_offer_and_wraps_original(self):
        structure, device = make_faulty_geometric()
        stream = keyed_records(5000)
        drive_in = iter(stream)
        for record in drive_in:
            structure.offer(record)
            if structure.flushes > 2:
                break
        device.fail = True
        error = _offer_until_error(structure, drive_in)
        assert isinstance(error.__cause__, IOError)

    def test_fault_surfaces_on_sample_and_close(self):
        structure, device = make_faulty_geometric()
        stream = iter(keyed_records(5000))
        for record in stream:
            structure.offer(record)
            if structure.flushes > 2:
                break
        device.fail = True
        _offer_until_error(structure, stream)
        with pytest.raises(PipelineWriteError):
            structure.sample()
        with pytest.raises(PipelineWriteError):
            structure.close()

    def test_clear_fault_resumes_with_no_record_loss(self):
        structure, device = make_faulty_geometric()
        stream = keyed_records(8000)
        it = iter(stream)
        for record in it:
            structure.offer(record)
            if structure.flushes > 2:
                break
        device.fail = True
        _offer_until_error(structure, it)
        device.fail = False
        structure.clear_fault()
        for record in it:
            structure.offer(record)
        # In-memory ledgers are authoritative: the reservoir is still a
        # full sample drawn from the offered prefix, nothing vanished.
        sample = structure.sample()
        assert len(sample) == structure.capacity
        offered = {r.key for r in stream}
        assert all(r.key in offered for r in sample)
        structure.check_invariants()
        structure.close()


class TestManagedPipelined:
    def test_checkpoint_restore_parity_with_pipeline(self, tmp_path):
        def run(pipeline: bool, subdir: str):
            config = GeometricFileConfig(
                capacity=400, buffer_capacity=50, record_size=40,
                beta_records=8, retain_records=True, pipeline=pipeline,
            )
            path = tmp_path / subdir / "state.json"
            path.parent.mkdir()
            blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
            factory = lambda: make_device("sim", blocks)  # noqa: E731
            managed = ManagedSample(path, factory, config,
                                    checkpoint_every=0, seed=5)
            for record in keyed_records(1500):
                managed.offer(record)
            managed.checkpoint()
            restored = ManagedSample.restore(path, factory,
                                             checkpoint_every=0)
            for record in keyed_records(2000)[1500:]:
                managed.offer(record)
                restored.offer(record)
            a = sorted(r.key for r in managed.sample())
            b = sorted(r.key for r in restored.sample())
            assert a == b
            managed.structure.close()
            restored.structure.close()
            return a

        assert run(False, "sync") == run(True, "piped")


class TestShardedPipelined:
    def test_inline_pool_parity_with_pipeline(self, tmp_path):
        from repro.service import ShardedReservoir

        def run(pipeline: bool, subdir: str):
            config = GeometricFileConfig(
                capacity=400, buffer_capacity=50, record_size=40,
                beta_records=8, retain_records=True,
                admission="uniform", pipeline=pipeline,
            )
            root = tmp_path / subdir
            with ShardedReservoir(root, config, shards=2, pool="inline",
                                  partition="round-robin",
                                  seed=3) as service:
                records = keyed_records(2000)
                for start in range(0, len(records), 250):
                    service.offer_batch(records[start:start + 250])
                sample = sorted(r.key for r in service.sample(200))
                seen = service.stats().seen
            return sample, seen

        assert run(False, "sync") == run(True, "piped")


class TestBufferPoolCoalescing:
    def test_flush_all_merges_adjacent_dirty_frames(self):
        device = SimulatedBlockDevice(64, small_disk_params(),
                                      retain_data=True)
        pool = LRUBufferPool(device, 8)
        for block in (3, 4, 5, 20):
            pool.put(block, bytes([block]) * TEST_BLOCK)
        before = device.stats()
        pool.flush_all()
        after = device.stats()
        # 3..5 coalesce into one burst; 20 is its own: 2 writes, not 4.
        assert after.writes - before.writes == 2
        assert after.blocks_written - before.blocks_written == 4
        assert pool.stats.write_backs == 4  # still counted per frame
        assert device.read_blocks(4, 1) == bytes([4]) * TEST_BLOCK
