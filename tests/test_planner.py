"""Tests for the tiered AQP answer engine (``repro.estimate.planner``).

Three statistical properties anchor the suite:

* chi-square membership uniformity of :class:`HotSubsample` under
  sustained overwrite churn (both the scalar and the vectorised
  admission paths);
* KS equivalence between cache-answered estimates and estimates from
  ideal uniform reservoir draws of the same size (the law every
  reservoir's ``sample()`` is separately tested against);
* CLT interval coverage across 200 seeded runs.

The rest covers the planner's tiering mechanics -- bound checks,
escalation sizing, coherence self-healing, trace/gauge wiring -- and
the cache's integration with every front-end named by the protocol:
``GeometricFile``, ``MultipleGeometricFiles``, ``ManagedSample``,
``ShardedReservoir``, and ``ServeClient`` (where a cache hit must skip
the transport entirely).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from conftest import TEST_BLOCK, make_geometric_file, make_multi_file, \
    small_disk_params
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.managed import ManagedSample
from repro.estimate import (
    HotSubsample,
    QueryPlanner,
    SnapshotEstimator,
)
from repro.obs import MetricsRegistry, TraceSink
from repro.serve import ReservoirServer, ServeClient
from repro.service import ShardedReservoir
from repro.storage.device import SimulatedBlockDevice
from repro.storage.recordbatch import RecordBatch
from repro.storage.records import Record, RecordSchema

pytestmark = pytest.mark.aqp

SCHEMA = RecordSchema(40)


def records_with_values(values, start=0):
    return [Record(key=start + i, value=float(v), timestamp=0.0)
            for i, v in enumerate(values)]


def keyed(n, start=0):
    return records_with_values(range(start, start + n), start)


# -- the hot subsample --------------------------------------------------------


class TestHotSubsample:
    def test_warm_fill_keeps_everything(self):
        hot = HotSubsample(SCHEMA, budget=64)
        hot.observe_many(keyed(40))
        assert hot.fill == 40 and hot.seen == 40 and hot.coherent
        assert sorted(hot.view().column("key").tolist()) == list(range(40))
        hot.check_invariant()

    def test_scalar_and_batch_verbs_share_the_law(self):
        hot = HotSubsample(SCHEMA, budget=32)
        for r in keyed(100):
            hot.observe(r)
        batch = RecordBatch.from_records(SCHEMA, keyed(100, start=100))
        hot.observe_batch(batch)
        assert hot.seen == 200 and hot.fill == 32
        hot.check_invariant()

    def test_rejects_degenerate_budget(self):
        with pytest.raises(ValueError):
            HotSubsample(SCHEMA, budget=1)

    def test_observe_count_breaks_coherence(self):
        hot = HotSubsample(SCHEMA, budget=16)
        hot.observe_many(keyed(16))
        hot.observe_count(10)
        assert not hot.coherent and hot.seen == 26
        # Further record-bearing ingest keeps counting but cannot admit.
        hot.observe_many(keyed(5, start=26))
        assert hot.seen == 31 and not hot.coherent
        assert hot.staleness() == 1.0

    def test_none_payload_breaks_coherence(self):
        hot = HotSubsample(SCHEMA, budget=16)
        hot.observe(None)
        assert not hot.coherent and hot.seen == 1

    def test_refresh_restores_coherence_and_thins_to_budget(self):
        hot = HotSubsample(SCHEMA, budget=16)
        hot.observe_count(500)
        assert not hot.coherent
        hot.refresh(keyed(100), seen=500)
        assert hot.coherent and hot.fill == 16 and hot.seen == 500
        assert hot.refreshes == 1
        hot.check_invariant()

    def test_refresh_smaller_than_budget_shrinks_m(self):
        hot = HotSubsample(SCHEMA, budget=64)
        hot.observe_count(100)
        hot.refresh(keyed(20), seen=100)
        assert hot.fill == 20 and hot.coherent
        # Subsequent stream admissions hold the shrunken reservoir size
        # fixed (Algorithm R cannot soundly regrow m mid-stream).
        hot.observe_many(keyed(200, start=100))
        assert hot.fill == 20
        hot.check_invariant()

    def test_refresh_rejects_impossible_population(self):
        hot = HotSubsample(SCHEMA, budget=8)
        with pytest.raises(ValueError):
            hot.refresh(keyed(10), seen=5)

    def test_enabled_mid_stream_starts_incoherent(self):
        hot = HotSubsample(SCHEMA, budget=8, stream_seen=1000)
        assert not hot.coherent and hot.seen == 1000

    def test_membership_uniformity_chi_square_batched(self):
        """Under heavy overwrite churn every stream position is cached
        with equal probability (vectorised admission path)."""
        m, n, trials = 50, 1000, 400
        counts = np.zeros(n)
        for seed in range(trials):
            hot = HotSubsample(SCHEMA, budget=m, seed=seed)
            for start in range(0, n, 250):
                hot.observe_many(keyed(250, start=start))
            assert hot.fill == m
            counts[hot.view().column("key")] += 1
        assert counts.sum() == trials * m
        _, p = scipy.stats.chisquare(counts)
        assert p > 1e-3, f"cached membership is not uniform (p={p:.2e})"

    def test_membership_uniformity_chi_square_scalar(self):
        """Same law through the one-record ``observe`` path."""
        m, n, trials = 20, 200, 400
        counts = np.zeros(n)
        for seed in range(trials):
            hot = HotSubsample(SCHEMA, budget=m, seed=seed)
            for r in keyed(n):
                hot.observe(r)
            counts[hot.view().column("key")] += 1
        _, p = scipy.stats.chisquare(counts)
        assert p > 1e-3, f"cached membership is not uniform (p={p:.2e})"

    def test_cache_estimates_match_reservoir_law_ks(self):
        """Cache-answered AVG estimates are distributed like estimates
        from ideal uniform draws of the same size -- the law the full
        reservoir's ``sample()`` is separately tested against."""
        m, n, runs = 256, 3000, 150
        cache_estimates, reservoir_estimates = [], []
        for seed in range(runs):
            rng = np.random.default_rng(10_000 + seed)
            values = rng.uniform(0.0, 1000.0, size=n)
            hot = HotSubsample(SCHEMA, budget=m, seed=seed)
            for start in range(0, n, 1000):
                hot.observe_many(
                    records_with_values(values[start:start + 1000], start))
            cache_estimates.append(hot.query().avg().value)
            draw = rng.choice(values, size=m, replace=False)
            reservoir_estimates.append(float(draw.mean()))
        _, p = scipy.stats.ks_2samp(cache_estimates, reservoir_estimates)
        assert p > 1e-3, (
            f"cache-answered estimates diverge from the uniform "
            f"reservoir law (KS p={p:.2e})")

    def test_clt_coverage_across_200_seeded_runs(self):
        """95% intervals from the cache cover the true stream mean at
        (at least) the nominal rate across 200 independent streams."""
        m, n, runs = 512, 4000, 200
        covered = 0
        for seed in range(runs):
            rng = np.random.default_rng(20_000 + seed)
            values = rng.uniform(0.0, 1000.0, size=n)
            hot = HotSubsample(SCHEMA, budget=m, seed=seed)
            hot.observe_many(records_with_values(values))
            interval = hot.query().avg().interval(0.95)
            truth = float(values.mean())
            if interval.low <= truth <= interval.high:
                covered += 1
        # Binomial(200, 0.95) puts 3+ sigma below the mean at ~180;
        # without-replacement sampling only widens the margin.
        assert covered >= 180, f"coverage {covered}/200 below nominal"


# -- the shared snapshot estimator -------------------------------------------


class TestSnapshotEstimator:
    def test_sum_count_avg(self):
        est = SnapshotEstimator(keyed(100), 1000)
        assert est.sum().value == pytest.approx(10 * sum(range(100)))
        assert est.count().value == pytest.approx(1000)
        assert est.avg().value == pytest.approx(49.5)
        assert est.count(lambda r: r.value < 50).value == pytest.approx(500)

    def test_sum_needs_population(self):
        with pytest.raises(ValueError, match="population_size"):
            SnapshotEstimator(keyed(10)).sum()

    def test_avg_needs_two_matching(self):
        with pytest.raises(ValueError, match="fewer than two"):
            SnapshotEstimator(keyed(10)).avg(
                predicate=lambda r: r.value > 8)

    def test_rejects_impossible_population(self):
        with pytest.raises(ValueError):
            SnapshotEstimator(keyed(10), 5)


# -- the planner over the geometric file -------------------------------------


def planner_over_geometric(tmp_path=None, *, capacity=512, stream=4000,
                           budget=1024, error=0.05, seed=0):
    gf = make_geometric_file(capacity=capacity, buffer_capacity=64,
                             record_size=40, seed=seed)
    planner = QueryPlanner(gf, error=error, confidence=0.95,
                           budget=budget, seed=seed)
    rng = np.random.default_rng(seed)
    for start in range(0, stream, 1000):
        gf.offer_batch(records_with_values(
            rng.uniform(0.0, 1000.0, size=1000), start))
    return gf, planner


class TestQueryPlannerGeometric:
    def test_broad_aggregates_hit_the_cache(self):
        gf, planner = planner_over_geometric()
        for answer in (planner.avg(), planner.sum(), planner.count()):
            assert answer.tier == "cache"
            assert answer.target_met
            assert answer.k_drawn is None and answer.reason is None
        assert planner.hit_rate == 1.0
        # The Section 2 arithmetic: uniform values (cv ~ 0.58) need
        # ~513 rows for 5% at 95%, which the 1024-row cache holds.
        assert planner.avg().n_used <= 1024

    def test_selective_query_escalates_with_sized_draw(self):
        gf, planner = planner_over_geometric()
        answer = planner.count(where=("value", 990.0, 1000.0))
        assert answer.tier == "disk"
        assert answer.reason == "bound_missed"
        # A 1% predicate needs ~150k rows; the draw is clamped to the
        # structure capacity (the largest always-answerable draw).
        assert answer.k_drawn == 512
        assert planner.escalations == 1

    def test_estimates_are_consistent_with_truth(self):
        gf, planner = planner_over_geometric()
        answer = planner.avg()
        # Uniform [0, 1000): the cache estimate must land near 500 well
        # within a few interval half-widths.
        assert abs(answer.value - 500.0) < 5 * answer.interval.half_width

    def test_count_only_feed_escalates_then_heals(self):
        """Any count-only feeder (``ingest``, skip gaps) breaks cache
        coherence; the next query escalates and the refresh from that
        uniform draw restores it."""
        gf, planner = planner_over_geometric()
        planner.cache.observe_count(500)
        assert not planner.cache.coherent
        healed = planner.avg()
        assert healed.tier == "disk" and healed.reason == "incoherent"
        assert planner.cache.coherent
        assert planner.cache.seen == gf.stats().seen
        # The healed cache holds one capacity-sized draw (512 rows --
        # right at the 5% AVG boundary), so assert the hit at a target
        # those rows certify with margin.
        assert planner.avg(error=0.08).tier == "cache"

    def test_ingest_verb_marks_cache_incoherent(self):
        """The count-only ``ingest`` hook feeds ``observe_count`` (on a
        structure that allows count-only mode)."""
        gf = make_geometric_file(capacity=256, buffer_capacity=32,
                                 record_size=40, retain_records=False)
        hot = gf.enable_aqp_cache(budget=64)
        gf.ingest(100)
        assert not hot.coherent and hot.seen == 100
        assert hot.seen == gf.stats().seen

    def test_tighter_target_escalates(self):
        gf, planner = planner_over_geometric()
        assert planner.avg(error=0.05).tier == "cache"
        answer = planner.avg(error=0.0005)
        assert answer.tier == "disk" and answer.reason == "bound_missed"

    def test_trace_events_and_gauges(self):
        gf, planner = planner_over_geometric()
        registry = MetricsRegistry()
        trace = TraceSink()
        planner.instrument(registry, trace, name="gf-planner")
        planner.avg()
        planner.count(where=("value", 990.0, 1000.0))
        hits = trace.events(kind="aqp_cache_hit", source="gf-planner")
        escalations = trace.events(kind="aqp_escalate", source="gf-planner")
        assert len(hits) == 1 and hits[0].fields["aggregate"] == "avg"
        assert len(escalations) == 1
        assert escalations[0].fields["reason"] == "bound_missed"
        gauges = {m.name for m in registry}
        assert {"aqp.hit_rate", "aqp.cache_staleness",
                "aqp.cache_fill"} <= gauges
        assert registry.gauge(
            "aqp.hit_rate", structure="gf-planner").value == 0.5

    def test_bit_exact_with_uncached_twin(self):
        """Enabling the cache and planning queries never perturbs the
        engine: an uncached twin fed the same stream and issued the
        same draws finishes byte-identical (samples, DiskStats,
        clock)."""
        def build(seed=3):
            return make_geometric_file(capacity=512, buffer_capacity=64,
                                       record_size=40, seed=seed)

        planner_gf, twin = build(), build()
        draws = []
        inner = planner_gf.snapshot_batch

        def recording(k=None, **kwargs):
            draws.append(k)
            return inner(k, **kwargs)

        planner_gf.snapshot_batch = recording
        planner = QueryPlanner(planner_gf, error=0.05, budget=128, seed=3)
        rng = np.random.default_rng(3)
        for start in range(0, 3000, 1000):
            batch = records_with_values(
                rng.uniform(0.0, 1000.0, size=1000), start)
            planner_gf.offer_batch(batch)
            twin.offer_batch(batch)
        planner.avg()                                    # cache hit
        planner.count(where=("value", 995.0, 1000.0))    # escalation
        planner.sum(where=("value", 990.0, 1000.0))      # escalation
        del planner_gf.snapshot_batch
        assert len(draws) >= 2
        for k in draws:
            twin.snapshot_batch(k)
        batch_a, seen_a = planner_gf.snapshot_batch(None)
        batch_b, seen_b = twin.snapshot_batch(None)
        assert seen_a == seen_b
        assert batch_a.array.tobytes() == batch_b.array.tobytes()
        stats_a, stats_b = planner_gf.stats(), twin.stats()
        assert stats_a.clock == stats_b.clock
        assert stats_a.io == stats_b.io

    def test_enable_is_idempotent(self):
        gf = make_geometric_file(capacity=256, buffer_capacity=32,
                                 record_size=40)
        first = gf.enable_aqp_cache(budget=64)
        assert gf.enable_aqp_cache(budget=128) is first
        assert gf.aqp_cache is first


# -- the other front-ends -----------------------------------------------------


class TestPlannerFrontEnds:
    def test_multi_file(self):
        mf = make_multi_file(capacity=640, buffer_capacity=64,
                             record_size=40)
        planner = QueryPlanner(mf, error=0.05, budget=1024)
        rng = np.random.default_rng(0)
        mf.offer_batch(records_with_values(
            rng.uniform(0.0, 1000.0, size=3000)))
        assert planner.avg().tier == "cache"
        assert planner.count(where=("value", 995.0, 1000.0)).tier == "disk"

    def test_managed_sample(self, tmp_path):
        cfg = GeometricFileConfig(capacity=400, buffer_capacity=40,
                                  record_size=40, retain_records=True,
                                  beta_records=4)
        blocks = GeometricFile.required_blocks(cfg, TEST_BLOCK)
        ms = ManagedSample(
            tmp_path / "s.json",
            lambda: SimulatedBlockDevice(blocks, small_disk_params()),
            cfg, checkpoint_every=1000)
        planner = QueryPlanner(ms, error=0.05, budget=1024)
        rng = np.random.default_rng(1)
        ms.offer_batch(records_with_values(
            rng.uniform(0.0, 1000.0, size=2000)))
        answer = planner.avg()
        assert answer.tier == "cache" and answer.target_met
        ms.close()

    def test_sharded_service_cache_rides_the_union_stream(self, tmp_path):
        config = GeometricFileConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, retain_records=True,
                                     admission="uniform")
        engine = ShardedReservoir(tmp_path / "svc", config, shards=4,
                                  pool="inline", partition="round-robin",
                                  seed=0)
        try:
            planner = QueryPlanner(engine, error=0.05, budget=1024)
            rng = np.random.default_rng(2)
            for start in range(0, 4000, 1000):
                engine.offer_batch(records_with_values(
                    rng.uniform(0.0, 1000.0, size=1000), start))
            assert planner.cache.seen == 4000
            assert planner.cache.coherent
            assert planner.avg().tier == "cache"
            selective = planner.count(where=("value", 995.0, 1000.0))
            assert selective.tier == "disk"
            # Escalation draws are capped at one shard's capacity (the
            # largest always-answerable merged draw).
            assert selective.k_drawn <= config.capacity
        finally:
            engine.close()

    def test_serve_client_cache_hits_skip_the_transport(self, tmp_path):
        config = GeometricFileConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, retain_records=True,
                                     admission="uniform")
        engine = ShardedReservoir(tmp_path / "svc", config, shards=4,
                                  pool="inline", partition="round-robin",
                                  seed=0)
        server = ReservoirServer(engine)
        client = ServeClient.in_process(server)
        try:
            planner = QueryPlanner(client, error=0.05, budget=1024)
            rng = np.random.default_rng(4)
            for start in range(0, 4000, 1000):
                client.offer_batch(records_with_values(
                    rng.uniform(0.0, 1000.0, size=1000), start))

            calls = []
            inner = client._call

            def counting(op, args=None):
                calls.append(op)
                return inner(op, args)

            client._call = counting
            answer = planner.avg()
            assert answer.tier == "cache" and calls == [], (
                "a cache hit paid a transport round-trip")
            selective = planner.count(where=("value", 995.0, 1000.0))
            assert selective.tier == "disk" and "snapshot" in calls
            del client._call
        finally:
            client.close()
            engine.close()

    def test_serve_client_estimate_shims_preserved(self, tmp_path):
        config = GeometricFileConfig(capacity=500, buffer_capacity=50,
                                     record_size=40, retain_records=True,
                                     admission="uniform")
        engine = ShardedReservoir(tmp_path / "svc", config, shards=2,
                                  pool="inline", seed=0)
        server = ReservoirServer(engine)
        client = ServeClient.in_process(server)
        try:
            client.offer_batch(keyed(1000))
            est = client.estimate_sum(100)
            assert est.value > 0
            assert client.estimate_count(
                100, lambda r: r.value < 500).value > 0
            assert client.estimate_avg(100).value > 0
        finally:
            client.close()
            engine.close()
