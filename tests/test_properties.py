"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import TEST_BLOCK, small_disk_params
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.geometry import alpha_for, build_ladder
from repro.sampling import BiasedReservoir, ReservoirSample
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import MIN_RECORD_SIZE, Record, RecordSchema

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@given(record_size=st.integers(MIN_RECORD_SIZE, 256),
       key=st.integers(-2 ** 62, 2 ** 62),
       value=st.floats(allow_nan=False, allow_infinity=False,
                       width=64),
       timestamp=st.floats(allow_nan=False, allow_infinity=False,
                           width=64),
       payload=st.binary(max_size=64))
@settings(max_examples=200, deadline=None)
def test_record_codec_round_trip_property(record_size, key, value,
                                          timestamp, payload):
    """decode(encode(r)) == r up to payload truncation and zero-padding."""
    schema = RecordSchema(record_size)
    record = Record(key=key, value=value, timestamp=timestamp,
                    payload=payload)
    decoded = schema.decode(schema.encode(record))
    assert decoded.key == key
    assert decoded.value == value
    assert decoded.timestamp == timestamp
    room = record_size - MIN_RECORD_SIZE
    assert decoded.payload == payload[:room].rstrip(b"\x00")


@given(capacity=st.integers(1, 50), stream=st.integers(0, 400),
       seed=st.integers(0, 10 ** 6))
@settings(max_examples=100, deadline=None)
def test_reservoir_size_property(capacity, stream, seed):
    """len == min(capacity, seen) and contents are distinct stream items."""
    reservoir = ReservoirSample(capacity, random.Random(seed))
    reservoir.extend(range(stream))
    assert len(reservoir) == min(capacity, stream)
    contents = reservoir.contents()
    assert len(set(contents)) == len(contents)
    assert all(0 <= item < stream for item in contents)


@given(capacity=st.integers(1, 30), stream=st.integers(0, 300),
       seed=st.integers(0, 10 ** 6))
@settings(max_examples=80, deadline=None)
def test_biased_reservoir_size_property(capacity, stream, seed):
    reservoir = BiasedReservoir(capacity, rng=random.Random(seed))
    for i in range(stream):
        reservoir.offer(Record(key=i))
    assert len(reservoir) == min(capacity, stream)
    keys = [r.key for r in reservoir]
    assert len(set(keys)) == len(keys)


@given(data=st.data())
@_slow
def test_geometric_file_invariants_property(data):
    """Any (N, B, beta, stream length) keeps every file invariant."""
    buffer_capacity = data.draw(st.integers(4, 60), label="B")
    multiplier = data.draw(st.integers(2, 20), label="N/B")
    capacity = buffer_capacity * multiplier
    beta = data.draw(st.integers(1, max(1, buffer_capacity // 2)),
                     label="beta")
    stream = data.draw(st.integers(0, capacity * 3), label="stream")
    seed = data.draw(st.integers(0, 10 ** 6), label="seed")
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=40, retain_records=True, beta_records=beta,
        admission="always",
    )
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    gf = GeometricFile(device, config, seed=seed)
    for i in range(stream):
        gf.offer(Record(key=i))
    gf.check_invariants()
    sample = gf.sample()
    keys = [r.key for r in sample]
    assert len(keys) == min(capacity, stream)
    assert len(set(keys)) == len(keys)
    assert all(0 <= k < stream for k in keys)


@given(buffer=st.integers(10, 2000), ratio=st.integers(2, 100),
       beta=st.integers(1, 100))
@settings(max_examples=150, deadline=None)
def test_ladder_consistent_with_lemma_1_property(buffer, ratio, beta):
    """Summing a full cascade of decayed ladders reproduces N.

    A subsample aged k retains ladder.size_below(k); Lemma 1 says the
    steady-state sum over ages approximates N = B / (1 - alpha).
    """
    capacity = buffer * ratio
    alpha = alpha_for(capacity, buffer)
    ladder = build_ladder(buffer, alpha, min(beta, buffer))
    # A subsample aged k holds size_below(k) ~ B * alpha**k, so the sum
    # over the j disk-holding ages is N * (1 - alpha**j); the remaining
    # N * alpha**j lives in the decaying tail-only cascade.  Integer
    # rounding perturbs each rung by <= 1 record.
    j = ladder.n_disk_segments
    disk_part = sum(ladder.size_below(k) for k in range(j))
    assert disk_part <= capacity
    expected = capacity * (1.0 - alpha ** j)
    assert disk_part == pytest.approx(expected, rel=0.05, abs=j + 2)


@given(n_disks=st.integers(1, 8), stripe=st.integers(1, 4),
       accesses=st.lists(st.tuples(st.integers(0, 900),
                                   st.integers(1, 100)), max_size=25))
@settings(max_examples=100, deadline=None)
def test_striped_device_conservation_property(n_disks, stripe, accesses):
    """Every block written lands on exactly one spindle; the combined
    counters account for every access regardless of geometry."""
    from repro.storage import DiskParameters, StripedBlockDevice
    from repro.storage.device import write_zeros

    device = StripedBlockDevice(1000, n_disks,
                                DiskParameters(block_size=512),
                                stripe_blocks=stripe)
    total = 0
    for block, n in accesses:
        n = min(n, 1000 - block)
        if n <= 0:
            continue
        write_zeros(device, block, n)
        total += n
    assert device.combined_stats().blocks_written == total
    assert device.clock <= sum(d.clock for d in device.disks) + 1e-12
    assert device.clock == max(d.clock for d in device.disks)


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=300))
@settings(max_examples=150, deadline=None)
def test_online_aggregator_matches_batch_property(values):
    """Welford's running moments equal the batch computation."""
    import statistics

    from repro.estimate import OnlineAggregator

    agg = OnlineAggregator()
    agg.observe_many(values)
    assert agg.avg().value == pytest.approx(statistics.mean(values),
                                            rel=1e-9, abs=1e-6)
    assert agg.variance == pytest.approx(statistics.variance(values),
                                         rel=1e-6, abs=1e-6)
