"""Conformance tests for the unified ``Reservoir`` protocol.

Every maintained implementation -- the disk-backed structures, the
Section 3 baselines, the managed wrapper, the sharded service, and the
served client -- satisfies the one structural protocol in
:mod:`repro.core.protocols`, and the shared semantics (``sample(k)``
thinning, ``snapshot`` = sample + seen, ``offer_batch`` polymorphism)
hold across all of them.
"""

import pytest

from conftest import TEST_BLOCK, small_disk_params
from repro.baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from repro.bench.experiments import experiment_1
from repro.core import (
    GeometricFile,
    GeometricFileConfig,
    MultiFileConfig,
    MultipleGeometricFiles,
    Reservoir,
)
from repro.core.managed import ManagedSample
from repro.serve import ReservoirServer, ServeClient
from repro.service import ShardedReservoir
from repro.storage import Record, RecordBatch, SimulatedBlockDevice
from repro.storage.records import RecordSchema

RECORD_SIZE = 40


def keyed_records(n, start=0):
    return [Record(key=start + i, value=float(start + i), timestamp=0.0)
            for i in range(n)]


def make_baseline(cls, **overrides):
    settings = dict(capacity=200, buffer_capacity=20,
                    record_size=RECORD_SIZE, pool_blocks=4,
                    retain_records=True, admission="uniform")
    settings.update(overrides)
    config = DiskReservoirConfig(**settings)
    blocks = cls.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return cls(device, config, seed=0)


def make_geometric():
    config = GeometricFileConfig(capacity=200, buffer_capacity=20,
                                 record_size=RECORD_SIZE, beta_records=4,
                                 retain_records=True, admission="uniform")
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return GeometricFile(device, config, seed=0)


def make_multi():
    config = MultiFileConfig(capacity=200, buffer_capacity=20,
                             record_size=RECORD_SIZE, beta_records=4,
                             retain_records=True, admission="uniform")
    blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return MultipleGeometricFiles(device, config, seed=0)


MAKERS = {
    "virtual mem": lambda: make_baseline(VirtualMemoryReservoir),
    "scan": lambda: make_baseline(ScanReservoir),
    "local overwrite": lambda: make_baseline(LocalOverwriteReservoir),
    "geo file": make_geometric,
    "multiple geo files": make_multi,
}


def make_service(root, *, seed=0):
    config = GeometricFileConfig(capacity=100, buffer_capacity=10,
                                 record_size=32, beta_records=4,
                                 retain_records=True, admission="uniform")
    return ShardedReservoir(root, config, shards=2, pool="inline",
                            seed=seed)


def make_managed(tmp_path):
    config = GeometricFileConfig(capacity=400, buffer_capacity=40,
                                 record_size=RECORD_SIZE, beta_records=4,
                                 retain_records=True)
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    factory = lambda: SimulatedBlockDevice(blocks, small_disk_params())
    return ManagedSample(tmp_path / "managed.json", factory, config,
                         checkpoint_every=10)


class TestStructuralConformance:
    def test_every_alternative_satisfies_the_protocol(self):
        spec = experiment_1(scale=0)
        for name in MAKERS:
            structure = spec.make(name)
            assert isinstance(structure, Reservoir), name
            structure.close()

    def test_managed_sample_satisfies_the_protocol(self, tmp_path):
        managed = make_managed(tmp_path)
        assert isinstance(managed, Reservoir)
        managed.close()

    def test_sharded_service_satisfies_the_protocol(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            assert isinstance(service, Reservoir)

    def test_served_client_satisfies_the_protocol(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            client = ServeClient.in_process(ReservoirServer(service))
            assert isinstance(client, Reservoir)
            client.close()

    def test_protocol_rejects_non_reservoirs(self):
        assert not isinstance(object(), Reservoir)
        assert not isinstance({"offer": None}, Reservoir)


class TestSharedSemantics:
    """The protocol's behavioural contract, checked implementation by
    implementation (isinstance only proves method presence)."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_sample_default_and_thinned(self, name):
        structure = MAKERS[name]()
        try:
            structure.offer_batch(keyed_records(500))
            full = structure.sample()
            assert len(full) > 40
            thin = structure.sample(40)
            assert len(thin) == 40
            assert {r.key for r in thin} <= set(range(500))
            with pytest.raises(ValueError):
                structure.sample(len(full) + 10_000)
        finally:
            structure.close()

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_snapshot_is_sample_plus_seen(self, name):
        structure = MAKERS[name]()
        try:
            structure.offer_batch(keyed_records(300))
            records, seen = structure.snapshot(20)
            assert seen == 300
            assert len(records) == 20
        finally:
            structure.close()

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_offer_batch_accepts_recordbatch(self, name):
        structure = MAKERS[name]()
        try:
            schema = RecordSchema(RECORD_SIZE)
            batch = RecordBatch.from_records(schema, keyed_records(150))
            admitted = structure.offer_batch(batch)
            assert admitted == 150
            _, seen = structure.snapshot(10)
            assert seen == 150
        finally:
            structure.close()

    def test_service_semantics(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            schema = RecordSchema(32)
            service.offer_batch(keyed_records(200))
            service.offer_batch(
                RecordBatch.from_records(schema,
                                         keyed_records(200, start=500)))
            records, seen = service.snapshot(30)
            assert seen == 400
            assert len(records) == 30
            assert len(service.sample(30)) == 30
            service.checkpoint()

    def test_served_client_semantics(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            client = ServeClient.in_process(ReservoirServer(service))
            try:
                schema = RecordSchema(32)
                client.offer(Record(key=1, value=1.0, timestamp=0.0))
                client.offer_batch(keyed_records(199, start=10))
                client.offer_batch(
                    RecordBatch.from_records(schema,
                                             keyed_records(200, start=500)))
                records, seen = client.snapshot(30)
                assert seen == 400
                assert len(records) == 30
                batch = client.sample_batch(25)
                assert len(batch) == 25
                assert batch.schema.record_size == 32
                client.checkpoint()
                assert client.stats().seen == 400
            finally:
                client.close()

    def test_managed_semantics(self, tmp_path):
        managed = make_managed(tmp_path)
        managed.offer_batch(keyed_records(500))
        records, seen = managed.snapshot(15)
        assert seen == 500
        assert len(records) == 15
        assert len(managed.sample(15)) == 15
        managed.close()
