"""Meta-tests on the public API surface.

A library a downstream user adopts needs its advertised names to exist,
be importable from the top level, and carry documentation.  These tests
pin that contract.
"""

import inspect

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        assert sorted(repro.__all__) == list(repro.__all__)
        assert len(set(repro.__all__)) == len(repro.__all__)

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_every_public_name_is_documented(self, name):
        obj = getattr(repro, name)
        if inspect.ismodule(obj):
            return
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"{name} lacks a docstring"

    def test_subpackages_have_docstrings(self):
        import repro.analysis
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.estimate
        import repro.sampling
        import repro.storage
        import repro.streams

        for module in (repro, repro.analysis, repro.baselines,
                       repro.bench, repro.core, repro.estimate,
                       repro.sampling, repro.storage, repro.streams):
            assert module.__doc__ and module.__doc__.strip(), module

    def test_public_classes_have_documented_public_methods(self):
        """Every public method of every exported class has a docstring
        (dataclass/auto-generated members excluded)."""
        skip = {"__init__"}
        auto = {"count", "index"}  # tuple/namedtuple inheritances
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_") or attr_name in skip | auto:
                    continue
                if inspect.isfunction(attr):
                    doc = inspect.getdoc(attr)
                    assert doc and doc.strip(), \
                        f"{name}.{attr_name} lacks a docstring"

    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"
