"""Meta-tests on the public API surface.

A library a downstream user adopts needs its advertised names to exist,
be importable from the top level, and carry documentation.  These tests
pin that contract, for the top-level package and for every subpackage
that declares an ``__all__``, and pin the deprecation shims left behind
by the unified :class:`repro.Reservoir` protocol redesign.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.analysis",
    "repro.baselines",
    "repro.bench",
    "repro.core",
    "repro.estimate",
    "repro.obs",
    "repro.pipeline",
    "repro.sampling",
    "repro.serve",
    "repro.service",
    "repro.storage",
    "repro.streams",
)


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        assert sorted(repro.__all__) == list(repro.__all__)
        assert len(set(repro.__all__)) == len(repro.__all__)

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_every_public_name_is_documented(self, name):
        obj = getattr(repro, name)
        if inspect.ismodule(obj):
            return
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"{name} lacks a docstring"

    def test_subpackages_have_docstrings(self):
        import repro.analysis
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.estimate
        import repro.sampling
        import repro.storage
        import repro.streams

        for module in (repro, repro.analysis, repro.baselines,
                       repro.bench, repro.core, repro.estimate,
                       repro.sampling, repro.storage, repro.streams):
            assert module.__doc__ and module.__doc__.strip(), module

    def test_public_classes_have_documented_public_methods(self):
        """Every public method of every exported class has a docstring
        (dataclass/auto-generated members excluded)."""
        skip = {"__init__"}
        auto = {"count", "index"}  # tuple/namedtuple inheritances
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_") or attr_name in skip | auto:
                    continue
                if inspect.isfunction(attr):
                    doc = inspect.getdoc(attr)
                    assert doc and doc.strip(), \
                        f"{name}.{attr_name} lacks a docstring"

    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_serving_layer_names_are_exported(self):
        for name in ("Reservoir", "ReservoirServer", "ServeClient",
                     "AsyncServeClient", "InlineTransport", "ServerConfig",
                     "ServeError"):
            assert name in repro.__all__, name


class TestSubpackageSurfaces:
    """Every subpackage's ``__all__`` matches what it actually exports."""

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_all_names_resolve(self, modname):
        module = importlib.import_module(modname)
        for name in module.__all__:
            assert hasattr(module, name), f"{modname}.{name}"

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_all_is_sorted_and_unique(self, modname):
        module = importlib.import_module(modname)
        assert sorted(module.__all__) == list(module.__all__), modname
        assert len(set(module.__all__)) == len(module.__all__), modname

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_public_classes_are_advertised(self, modname):
        """No stealth classes: a class defined inside the package and
        reachable from its namespace is either in ``__all__`` or
        underscore-private."""
        module = importlib.import_module(modname)
        for name, obj in vars(module).items():
            if (inspect.isclass(obj) and not name.startswith("_")
                    and obj.__module__.startswith(modname)):
                assert name in module.__all__, f"{modname}.{name}"


class TestDeprecatedAliases:
    """The shims left behind by the protocol unification still work and
    still warn (once per process; reset between assertions)."""

    def _fresh_warnings(self):
        from repro.obs import reset_deprecation_warnings

        reset_deprecation_warnings()

    def test_sharded_offer_many_warns_and_forwards(self, tmp_path):
        from repro.core.geometric_file import GeometricFileConfig
        from repro.service import ShardedReservoir
        from repro.storage import Record

        self._fresh_warnings()
        config = GeometricFileConfig(capacity=64, buffer_capacity=16,
                                     record_size=50, retain_records=True,
                                     admission="uniform")
        service = ShardedReservoir(str(tmp_path), config, shards=2,
                                   pool="inline", seed=7)
        try:
            records = [Record(key=i, value=float(i), timestamp=0.0)
                       for i in range(8)]
            with pytest.deprecated_call():
                admitted = service.offer_many(records)
            assert admitted == 8
            assert service.snapshot(8)[1] == 8
        finally:
            service.close()

    def test_sharded_offer_many_warns_exactly_once_per_process(
            self, tmp_path):
        """The shim dedupes: the first call warns, every later call is
        silent (simplefilter('error') would escalate a repeat)."""
        import warnings

        from repro.core.geometric_file import GeometricFileConfig
        from repro.service import ShardedReservoir
        from repro.storage import Record

        self._fresh_warnings()
        config = GeometricFileConfig(capacity=64, buffer_capacity=16,
                                     record_size=50, retain_records=True,
                                     admission="uniform")
        service = ShardedReservoir(str(tmp_path), config, shards=2,
                                   pool="inline", seed=7)
        try:
            records = [Record(key=i, value=float(i), timestamp=0.0)
                       for i in range(8)]
            with pytest.deprecated_call() as captured:
                service.offer_many(records)
            assert len(captured.list) == 1
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                admitted = service.offer_many(
                    [Record(key=8 + i, value=float(i), timestamp=0.0)
                     for i in range(8)])
            assert admitted == 8
            assert service.stats().seen == 16
        finally:
            service.close()

    def test_cli_alias_flags_warn_and_map_to_report_kinds(self):
        from repro.cli import _resolve_reports, build_parser

        parser = build_parser()
        cases = [
            (["--perf-smoke"], ("ingest", "BENCH_ingest.json")),
            (["--perf-smoke", "custom.json"], ("ingest", "custom.json")),
            (["--query-report"], ("query", "BENCH_query.json")),
            (["--pipeline"], ("pipeline", "BENCH_pipeline.json")),
            (["--shard-report", "s.json"], ("shard", "s.json")),
        ]
        for argv, expected in cases:
            self._fresh_warnings()
            args = parser.parse_args(argv)
            with pytest.deprecated_call():
                reports = _resolve_reports(parser, args)
            assert reports == [expected], argv

    def test_report_flag_does_not_warn(self):
        import warnings

        from repro.cli import _resolve_reports, build_parser

        parser = build_parser()
        args = parser.parse_args(["--report", "ingest",
                                  "--report", "serve=s.json"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reports = _resolve_reports(parser, args)
        assert reports == [("ingest", "BENCH_ingest.json"),
                           ("serve", "s.json")]
