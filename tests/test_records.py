"""Unit tests for the record schema and codec."""

import pytest

from repro.storage.records import (
    MIN_RECORD_SIZE,
    Record,
    RecordSchema,
    WeightedRecord,
)


class TestSchemaValidation:
    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            RecordSchema(MIN_RECORD_SIZE - 1)

    def test_weighted_minimum_is_larger(self):
        RecordSchema(MIN_RECORD_SIZE + 8, weighted=True)
        with pytest.raises(ValueError):
            RecordSchema(MIN_RECORD_SIZE + 7, weighted=True)

    def test_records_per_block(self):
        schema = RecordSchema(50)
        assert schema.records_per_block(32 * 1024) == 655

    def test_record_too_big_for_block(self):
        schema = RecordSchema(4096)
        with pytest.raises(ValueError):
            schema.records_per_block(1024)

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (655, 1),
                                            (656, 2), (1310, 2), (1311, 3)])
    def test_blocks_for_records(self, n, expected):
        schema = RecordSchema(50)
        assert schema.blocks_for_records(n, 32 * 1024) == expected

    def test_blocks_for_negative_records(self):
        with pytest.raises(ValueError):
            RecordSchema(50).blocks_for_records(-1, 1024)


class TestCodec:
    def test_round_trip(self):
        schema = RecordSchema(64)
        record = Record(key=123456789, value=3.25, timestamp=17.5,
                        payload=b"sensor7")
        assert schema.decode(schema.encode(record)) == record

    def test_encoded_size_is_exact(self):
        schema = RecordSchema(50)
        assert len(schema.encode(Record(key=1))) == 50

    def test_payload_truncated_to_fit(self):
        schema = RecordSchema(MIN_RECORD_SIZE + 4)
        record = Record(key=1, payload=b"abcdefgh")
        decoded = schema.decode(schema.encode(record))
        assert decoded.payload == b"abcd"

    def test_negative_key_round_trips(self):
        schema = RecordSchema(32)
        record = Record(key=-42, value=-1.5, timestamp=-0.25)
        assert schema.decode(schema.encode(record)) == record

    def test_decode_wrong_size_rejected(self):
        schema = RecordSchema(50)
        with pytest.raises(ValueError):
            schema.decode(b"\x00" * 49)

    def test_weighted_round_trip(self):
        schema = RecordSchema(64, weighted=True)
        record = Record(key=7, value=1.0, timestamp=2.0, payload=b"x")
        decoded = schema.decode(schema.encode(record, weight=0.375))
        assert isinstance(decoded, WeightedRecord)
        assert decoded.record == record
        assert decoded.weight == 0.375

    def test_weighted_default_weight_is_one(self):
        schema = RecordSchema(64, weighted=True)
        decoded = schema.decode(schema.encode(Record(key=1)))
        assert decoded.weight == 1.0

    def test_unweighted_schema_rejects_weight(self):
        schema = RecordSchema(64)
        with pytest.raises(ValueError):
            schema.encode(Record(key=1), weight=2.0)

    def test_batch_round_trip(self):
        schema = RecordSchema(40)
        records = [Record(key=i, value=i * 0.5) for i in range(10)]
        data = schema.encode_batch(records)
        assert len(data) == 400
        assert schema.decode_batch(data, 10) == records

    def test_batch_with_weights(self):
        schema = RecordSchema(40, weighted=True)
        records = [Record(key=i) for i in range(3)]
        weights = [0.5, 1.0, 2.0]
        data = schema.encode_batch(records, weights)
        decoded = schema.decode_batch(data, 3)
        assert [d.weight for d in decoded] == weights

    def test_batch_weight_length_mismatch(self):
        schema = RecordSchema(40, weighted=True)
        with pytest.raises(ValueError):
            schema.encode_batch([Record(key=1)], [1.0, 2.0])

    def test_decode_batch_insufficient_bytes(self):
        schema = RecordSchema(40)
        with pytest.raises(ValueError):
            schema.decode_batch(b"\x00" * 39, 1)


class TestWeightedRecord:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedRecord(Record(key=1), weight=-0.1)

    def test_zero_weight_allowed_for_storage(self):
        # Samplers reject non-positive f(r); the storage container only
        # forbids negatives (a stored weight of zero can arise from
        # clamping in user code).
        WeightedRecord(Record(key=1), weight=0.0)
