"""Tests for the shared StreamReservoir interface and draw helpers."""

import collections
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_geometric_file
from repro.reservoir import (
    StreamReservoir,
    draw_victim_counts,
    hypergeometric,
)
from repro.storage.records import Record


class _CountingReservoir(StreamReservoir):
    """Minimal concrete reservoir for interface tests."""

    name = "counting"

    def __init__(self, capacity, **kwargs):
        super().__init__(capacity, **kwargs)
        self.admitted = 0

    def _admit(self, record):
        self.admitted += 1

    def _admit_count(self, n):
        self.admitted += n

    @property
    def clock(self):
        return 0.0


class TestAdmissionModes:
    def test_always_admits_everything(self):
        r = _CountingReservoir(10, admission="always", seed=0)
        for i in range(100):
            r.offer(Record(key=i))
        assert r.admitted == r.samples_added == 100

    def test_uniform_admits_n_over_i(self):
        r = _CountingReservoir(100, admission="uniform", seed=0)
        for i in range(5000):
            r.offer(Record(key=i))
        expected = 100 + sum(100 / i for i in range(101, 5001))
        assert r.admitted == pytest.approx(expected, rel=0.15)

    def test_ingest_matches_offer_statistically(self):
        offered = []
        batched = []
        for seed in range(40):
            a = _CountingReservoir(100, admission="uniform", seed=seed)
            for i in range(2000):
                a.offer(Record(key=i))
            offered.append(a.admitted)
            b = _CountingReservoir(100, admission="uniform",
                                   seed=seed + 10 ** 6)
            b.ingest(2000)
            batched.append(b.admitted)
        mean_a = sum(offered) / len(offered)
        mean_b = sum(batched) / len(batched)
        assert mean_a == pytest.approx(mean_b, rel=0.05)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _CountingReservoir(10, admission="sometimes")

    def test_negative_ingest_rejected(self):
        r = _CountingReservoir(10)
        with pytest.raises(ValueError):
            r.ingest(-1)

    def test_zero_ingest_is_noop(self):
        r = _CountingReservoir(10)
        r.ingest(0)
        assert r.seen == 0


class TestApplyPending:
    def test_result_size(self):
        disk = [Record(key=i) for i in range(100)]
        pending = [Record(key=1000 + i) for i in range(10)]
        out = StreamReservoir.apply_pending(disk, pending, random.Random(0))
        assert len(out) == 100
        keys = {r.key for r in out}
        assert all(1000 + i in keys for i in range(10))

    def test_no_pending_is_identity(self):
        disk = [Record(key=i) for i in range(5)]
        out = StreamReservoir.apply_pending(disk, [], random.Random(0))
        assert out == disk

    def test_victims_uniform(self):
        disk = [Record(key=i) for i in range(10)]
        pending = [Record(key=99)]
        killed = collections.Counter()
        for t in range(4000):
            out = StreamReservoir.apply_pending(disk, pending,
                                                random.Random(t))
            survivors = {r.key for r in out}
            for k in range(10):
                if k not in survivors:
                    killed[k] += 1
        for k in range(10):
            assert killed[k] == pytest.approx(400, abs=80)

    def test_too_many_pending_rejected(self):
        with pytest.raises(ValueError):
            StreamReservoir.apply_pending(
                [Record(key=0)], [Record(key=1), Record(key=2)],
                random.Random(0),
            )


class TestHypergeometricHelpers:
    def test_within_numpy_range_is_exact_hypergeometric(self):
        rng = np.random.default_rng(0)
        draws = [hypergeometric(rng, 50, 50, 20) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        # E = 20 * 50/100 = 10; Var = 20*.5*.5*(80/99) ~ 4.04.
        assert mean == pytest.approx(10.0, abs=0.15)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert var == pytest.approx(4.04, rel=0.15)

    def test_beyond_range_falls_back_to_binomial(self):
        rng = np.random.default_rng(0)
        draw = hypergeometric(rng, 10 ** 10, 10 ** 10, 1000)
        assert 0 <= draw <= 1000

    def test_fallback_respects_support(self):
        rng = np.random.default_rng(0)
        # nbad = 0 forces the draw to equal nsample.
        assert hypergeometric(rng, 2 * 10 ** 9, 0, 5) == 5

    def test_oversample_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            hypergeometric(rng, 5, 5, 11)


class TestVictimDraw:
    def test_counts_sum_and_bound(self):
        rng = np.random.default_rng(1)
        lives = [100, 50, 25, 10, 5]
        counts = draw_victim_counts(rng, lives, 40)
        assert sum(counts) == 40
        assert all(0 <= c <= live for c, live in zip(counts, lives))

    def test_zero_draw(self):
        rng = np.random.default_rng(1)
        assert draw_victim_counts(rng, [5, 5], 0) == [0, 0]

    def test_draw_everything(self):
        rng = np.random.default_rng(1)
        assert draw_victim_counts(rng, [5, 7], 12) == [5, 7]

    def test_marginal_means_proportional_to_sizes(self):
        rng = np.random.default_rng(2)
        lives = [300, 200, 100]
        totals = [0, 0, 0]
        trials = 3000
        for _ in range(trials):
            counts = draw_victim_counts(rng, lives, 60)
            for i, c in enumerate(counts):
                totals[i] += c
        assert totals[0] / trials == pytest.approx(30.0, abs=0.5)
        assert totals[1] / trials == pytest.approx(20.0, abs=0.5)
        assert totals[2] / trials == pytest.approx(10.0, abs=0.5)

    def test_sequential_path_agrees_with_vectorised(self):
        """Means/variances of the fallback path match the marginals path."""
        lives = [400, 300, 200, 100]

        def collect(force_sequential):
            rng = np.random.default_rng(3)
            if force_sequential:
                # Trip the size guard by a singleton wrapper call path:
                # emulate via per-category conditional draws.
                out = []
                for _ in range(2000):
                    remaining_total, remaining = sum(lives), 100
                    row = []
                    for live in lives:
                        if live == remaining_total:
                            k = remaining
                        else:
                            k = hypergeometric(rng, live,
                                               remaining_total - live,
                                               remaining)
                        row.append(k)
                        remaining_total -= live
                        remaining -= k
                    out.append(row)
                return out
            return [draw_victim_counts(rng, lives, 100)
                    for _ in range(2000)]

        seq = collect(True)
        vec = collect(False)
        for i in range(len(lives)):
            mean_seq = sum(row[i] for row in seq) / len(seq)
            mean_vec = sum(row[i] for row in vec) / len(vec)
            assert mean_seq == pytest.approx(mean_vec, rel=0.05)

    def test_overdraw_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            draw_victim_counts(rng, [3, 3], 7)

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=20),
           st.integers(0, 100), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=150, deadline=None)
    def test_conservation_property(self, lives, draw, seed):
        rng = np.random.default_rng(seed)
        draw = min(draw, sum(lives))
        counts = draw_victim_counts(rng, lives, draw)
        assert sum(counts) == draw
        assert all(0 <= c <= live for c, live in zip(counts, lives))


class TestChunkFloor:
    def test_buffered_structures_advertise_their_flush_quantum(self):
        gf = make_geometric_file(capacity=1000, buffer_capacity=50)
        assert gf.chunk_floor == 50


class TestVictimDrawBeyondNumpyLimit:
    def test_split_path_conserves_and_is_proportional(self):
        import numpy as np

        from repro.reservoir import draw_victim_counts

        rng = np.random.default_rng(4)
        # Total just past numpy's 1e9 marginals limit.
        lives = [150_000_000] * 7 + [23_741_824]  # = 1,073,741,824
        totals = [0] * len(lives)
        trials = 200
        for _ in range(trials):
            counts = draw_victim_counts(rng, lives, 1_000_000)
            assert sum(counts) == 1_000_000
            for i, (c, live) in enumerate(zip(counts, lives)):
                assert 0 <= c <= live
                totals[i] += c
        total_mass = sum(lives)
        for i, live in enumerate(lives):
            expected = trials * 1_000_000 * live / total_mass
            assert totals[i] == pytest.approx(expected, rel=0.01)

    def test_single_population_beyond_numpy_limit(self):
        """Regression: one giant cohort (localized overwrite's first
        flush at paper scale) must not crash the split path."""
        import numpy as np

        from repro.reservoir import draw_victim_counts

        rng = np.random.default_rng(5)
        lives = [1_063_256_064, 10_485_760]  # exp1's second flush
        counts = draw_victim_counts(rng, lives, 10_485_760)
        assert sum(counts) == 10_485_760
        assert all(0 <= c <= live for c, live in zip(counts, lives))
        # Proportionality sanity: the giant cohort takes ~99 % of hits.
        assert counts[0] > 0.97 * 10_485_760
