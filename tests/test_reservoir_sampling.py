"""Unit tests for classic reservoir sampling (Algorithm 1)."""

import collections
import math
import random

import pytest

from repro.sampling import ReservoirSample, sample_without_replacement


class TestBasics:
    def test_fills_then_stays_fixed(self):
        reservoir = ReservoirSample(10, random.Random(0))
        for i in range(5):
            reservoir.offer(i)
        assert len(reservoir) == 5 and not reservoir.is_full
        for i in range(5, 100):
            reservoir.offer(i)
        assert len(reservoir) == 10 and reservoir.is_full

    def test_seen_counts_every_offer(self):
        reservoir = ReservoirSample(3, random.Random(0))
        reservoir.extend(range(50))
        assert reservoir.seen == 50

    def test_contents_is_a_copy(self):
        reservoir = ReservoirSample(3, random.Random(0))
        reservoir.extend(range(3))
        snapshot = reservoir.contents()
        snapshot.append(99)
        assert len(reservoir) == 3

    def test_offer_returns_evicted_item(self):
        reservoir = ReservoirSample(2, random.Random(1))
        reservoir.extend([10, 20])
        evictions = [reservoir.offer(i) for i in range(100, 200)]
        accepted = [e for e in evictions if e is not None]
        assert accepted, "with 100 offers something must be accepted"
        # Every evicted item must have been a prior member.
        universe = {10, 20} | set(range(100, 200))
        assert all(e in universe for e in accepted)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_iteration(self):
        reservoir = ReservoirSample(4, random.Random(0))
        reservoir.extend("abcd")
        assert sorted(reservoir) == ["a", "b", "c", "d"]


class TestUniformity:
    def test_inclusion_probability_is_n_over_i(self):
        """After the stream, each item resides with probability N/i."""
        trials, n, stream = 3000, 5, 40
        counts = collections.Counter()
        for t in range(trials):
            reservoir = ReservoirSample(n, random.Random(t))
            reservoir.extend(range(stream))
            counts.update(reservoir.contents())
        expected = trials * n / stream
        sigma = math.sqrt(trials * (n / stream) * (1 - n / stream))
        for item in range(stream):
            assert abs(counts[item] - expected) < 5 * sigma, item

    def test_chi_square_over_positions(self):
        """Pearson chi-square of inclusion counts against uniform."""
        trials, n, stream = 2000, 10, 50
        counts = collections.Counter()
        for t in range(trials):
            reservoir = ReservoirSample(n, random.Random(1000 + t))
            reservoir.extend(range(stream))
            counts.update(reservoir.contents())
        expected = trials * n / stream
        chi2 = sum((counts[i] - expected) ** 2 / expected
                   for i in range(stream))
        # 49 dof; 99.9th percentile is ~85.  Flaky-proof margin.
        assert chi2 < 100

    def test_prefix_property(self):
        """At every prefix the reservoir is a sample of that prefix."""
        reservoir = ReservoirSample(5, random.Random(3))
        for i in range(100):
            reservoir.offer(i)
            assert len(reservoir) == min(5, i + 1)
            assert all(item <= i for item in reservoir)


class TestOneShotSampling:
    def test_sizes(self):
        out = sample_without_replacement(list(range(100)), 10,
                                         random.Random(0))
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_zero_sample(self):
        assert sample_without_replacement([1, 2, 3], 0) == []

    def test_full_population(self):
        out = sample_without_replacement([1, 2, 3], 3, random.Random(0))
        assert sorted(out) == [1, 2, 3]

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            sample_without_replacement([1], 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_without_replacement([1], -1)

    def test_distribution_matches_random_sample(self):
        """Agreement in distribution with the standard library."""
        trials = 4000
        ours = collections.Counter()
        theirs = collections.Counter()
        for t in range(trials):
            rng = random.Random(t)
            ours.update(sample_without_replacement(range(10), 3, rng))
            theirs.update(random.Random(t + 10 ** 6).sample(range(10), 3))
        for item in range(10):
            assert abs(ours[item] - theirs[item]) < 0.15 * trials
