"""Unit tests for the Algorithm 2 sample buffer."""

import collections
import random

import pytest

from repro.core.buffer import SampleBuffer
from repro.storage.records import Record


def records(n):
    return [Record(key=i) for i in range(n)]


class TestAppend:
    def test_append_fills_in_order(self):
        buf = SampleBuffer(5, random.Random(0))
        for r in records(3):
            buf.append(r)
        assert buf.count == 3 and not buf.is_full
        assert [r.key for r in buf] == [0, 1, 2]

    def test_append_beyond_capacity_rejected(self):
        buf = SampleBuffer(2, random.Random(0))
        buf.append(Record(key=0))
        buf.append(Record(key=1))
        with pytest.raises(ValueError):
            buf.append(Record(key=2))

    def test_append_requires_record_in_retaining_mode(self):
        buf = SampleBuffer(2, random.Random(0))
        with pytest.raises(ValueError):
            buf.append(None)

    def test_append_count_in_count_only_mode(self):
        buf = SampleBuffer(10, random.Random(0), retain_records=False)
        buf.append_count(7)
        assert buf.count == 7
        with pytest.raises(ValueError):
            buf.append_count(4)  # would overfill

    def test_append_count_rejected_in_retaining_mode(self):
        buf = SampleBuffer(10, random.Random(0))
        with pytest.raises(TypeError):
            buf.append_count(3)

    def test_iteration_rejected_in_count_only_mode(self):
        buf = SampleBuffer(10, random.Random(0), retain_records=False)
        with pytest.raises(TypeError):
            list(buf)


class TestAddAdmitted:
    def test_first_admission_always_joins(self):
        buf = SampleBuffer(5, random.Random(0))
        assert buf.add_admitted(Record(key=0), reservoir_size=100) is True
        assert buf.count == 1

    def test_replacement_probability_is_count_over_n(self):
        """Monte Carlo check of Algorithm 2's count(B)/|R| branch."""
        joins = 0
        trials = 4000
        for t in range(trials):
            buf = SampleBuffer(100, random.Random(t))
            for r in records(50):
                buf.append(r)
            if buf.add_admitted(Record(key=999), reservoir_size=100):
                joins += 1
        # P(join) = 1 - 50/100 = 0.5.
        assert joins / trials == pytest.approx(0.5, abs=0.04)

    def test_replacement_does_not_change_count(self):
        buf = SampleBuffer(10, random.Random(1))
        for r in records(9):
            buf.append(r)
        # reservoir_size == count makes replacement certain.
        joined = buf.add_admitted(Record(key=99), reservoir_size=9)
        assert joined is False
        assert buf.count == 9
        assert 99 in {r.key for r in buf}

    def test_full_buffer_rejected(self):
        buf = SampleBuffer(2, random.Random(0))
        buf.append(Record(key=0))
        buf.append(Record(key=1))
        with pytest.raises(ValueError):
            buf.add_admitted(Record(key=2), reservoir_size=100)

    def test_replacement_slot_uniform(self):
        counts = collections.Counter()
        for t in range(3000):
            buf = SampleBuffer(4, random.Random(t))
            for r in records(3):
                buf.append(r)
            buf.add_admitted(Record(key=99), reservoir_size=3)  # certain
            for index, record in enumerate(buf):
                if record.key == 99:
                    counts[index] += 1
        for slot in range(3):
            assert counts[slot] == pytest.approx(1000, abs=150)


class TestDrain:
    def test_drain_returns_everything_and_resets(self):
        buf = SampleBuffer(5, random.Random(0))
        for r in records(5):
            buf.append(r)
        out, weights, count = buf.drain()
        assert count == 5
        assert sorted(r.key for r in out) == [0, 1, 2, 3, 4]
        assert weights is None
        assert buf.count == 0

    def test_drain_shuffles(self):
        """Over many drains, each record appears at each position."""
        position_of_zero = collections.Counter()
        for t in range(2000):
            buf = SampleBuffer(5, random.Random(t))
            for r in records(5):
                buf.append(r)
            out, _, _ = buf.drain()
            position_of_zero[[r.key for r in out].index(0)] += 1
        for pos in range(5):
            assert position_of_zero[pos] == pytest.approx(400, abs=100)

    def test_count_only_drain(self):
        buf = SampleBuffer(5, random.Random(0), retain_records=False)
        buf.append_count(5)
        out, weights, count = buf.drain()
        assert out is None and weights is None and count == 5


class TestWeights:
    def test_weighted_mode_keeps_pairs_aligned(self):
        buf = SampleBuffer(5, random.Random(3))
        for r in records(5):
            buf.append(r, weight=float(r.key) + 1.0)
        out, weights, _ = buf.drain()
        for record, weight in zip(out, weights):
            assert weight == pytest.approx(record.key + 1.0)

    def test_scale_weights(self):
        buf = SampleBuffer(3, random.Random(0))
        buf.append(Record(key=0), weight=2.0)
        buf.scale_weights(3.0)
        assert buf.weights() == [pytest.approx(6.0)]

    def test_scale_requires_weighted_mode(self):
        buf = SampleBuffer(3, random.Random(0))
        with pytest.raises(TypeError):
            buf.scale_weights(2.0)

    def test_scale_factor_must_be_positive(self):
        buf = SampleBuffer(3, random.Random(0))
        buf.append(Record(key=0), weight=1.0)
        with pytest.raises(ValueError):
            buf.scale_weights(0.0)

    def test_cannot_switch_to_weighted_mid_fill(self):
        buf = SampleBuffer(3, random.Random(0))
        buf.append(Record(key=0))
        with pytest.raises(ValueError):
            buf.append(Record(key=1), weight=1.0)

    def test_weighted_mode_requires_weight_every_time(self):
        buf = SampleBuffer(3, random.Random(0))
        buf.append(Record(key=0), weight=1.0)
        with pytest.raises(ValueError):
            buf.append(Record(key=1))

    def test_replacement_updates_weight(self):
        buf = SampleBuffer(4, random.Random(2))
        for r in records(3):
            buf.append(r, weight=1.0)
        buf.add_admitted(Record(key=99), reservoir_size=3, weight=7.0)
        out, weights, _ = buf.drain()
        by_key = {r.key: w for r, w in zip(out, weights)}
        assert by_key[99] == pytest.approx(7.0)

    def test_weights_survive_drain_reset(self):
        buf = SampleBuffer(2, random.Random(0))
        buf.append(Record(key=0), weight=1.0)
        buf.drain()
        buf.append(Record(key=1), weight=2.0)
        _, weights, _ = buf.drain()
        assert weights == [pytest.approx(2.0)]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SampleBuffer(0, random.Random(0))
