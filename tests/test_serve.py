"""Tier-1 tests for the serving layer: protocol, server, inline twin.

Everything here runs without sockets or an event loop -- the
:class:`~repro.serve.InlineTransport` pushes fully-encoded frames
through the server's real ``handle_frame`` entry, so these tests cover
the same dispatch path the asyncio front-end uses (which
``tests/test_serve_async.py`` then exercises over real TCP, behind the
``serve`` marker).
"""

import collections
import json

import pytest

from repro.core.geometric_file import GeometricFileConfig
from repro.serve import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    InlineTransport,
    Request,
    Response,
    ReservoirServer,
    ServeClient,
    ServeError,
    ServerConfig,
    TokenBucket,
)
from repro.serve.protocol import (
    RETRYABLE_CODES,
    decode_frame,
    decode_record,
    decode_records,
    encode_frame,
    encode_record,
    encode_records,
    failure,
    success,
)
from repro.service import ShardedReservoir
from repro.storage import Record

from test_batch_ingest import P_MIN, chi_square_p


def keyed_records(n, start=0, payload=False):
    return [Record(key=start + i, value=float(start + i), timestamp=0.25 * i,
                   payload=bytes([i % 251]) * 3 if payload else b"")
            for i in range(n)]


def service_config(capacity=200, buffer_capacity=20, record_size=32):
    return GeometricFileConfig(capacity=capacity,
                               buffer_capacity=buffer_capacity,
                               record_size=record_size, beta_records=4,
                               retain_records=True, admission="uniform")


def make_engine(root, *, seed=0, shards=4):
    return ShardedReservoir(root, service_config(), shards=shards,
                            pool="inline", seed=seed)


# -- wire protocol -----------------------------------------------------------


class TestFraming:
    def test_frame_round_trip(self):
        body = {"v": 1, "id": 7, "op": "hello", "args": {}}
        assert decode_frame(encode_frame(body)) == body

    def test_decoder_reassembles_split_frames(self):
        bodies = [{"id": i, "payload": "x" * i} for i in range(1, 6)]
        stream = b"".join(encode_frame(b) for b in bodies)
        decoder = FrameDecoder()
        out = []
        # Feed one byte at a time: worst-case fragmentation.
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        assert out == bodies
        assert not decoder.pending

    def test_oversized_frame_rejected_on_encode_and_feed(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "y" * 2048}, max_frame=1024)
        huge = (10_000_000).to_bytes(4, "big")
        with pytest.raises(FrameError):
            list(FrameDecoder(max_frame=1024).feed(huge))

    def test_record_codec_round_trip_with_payload(self):
        records = keyed_records(10, payload=True)
        wired = json.loads(json.dumps(encode_records(records)))
        assert decode_records(wired) == records

    def test_record_codec_preserves_float_values_exactly(self):
        record = Record(key=3, value=0.1 + 0.2, timestamp=1 / 3)
        assert decode_record(json.loads(
            json.dumps(encode_record(record)))) == record

    def test_request_response_wire_round_trip(self):
        request = Request(op="sample", id=12, args={"k": 5})
        assert Request.from_wire(request.to_wire()) == request
        ok = success(12, {"records": []})
        assert Response.from_wire(json.loads(
            json.dumps(ok.to_wire()))) == ok
        err = failure(13, "busy", "queue deep", retry_after=0.25)
        rebuilt = Response.from_wire(err.to_wire())
        assert rebuilt.error.code == "busy"
        assert rebuilt.error.retry_after == 0.25

    def test_error_codes_are_closed_set(self):
        assert set(RETRYABLE_CODES) <= set(ERROR_CODES)
        assert "busy" in RETRYABLE_CODES
        assert "rate_limited" in RETRYABLE_CODES


# -- token bucket ------------------------------------------------------------


class TestTokenBucket:
    def test_deterministic_with_injected_clock(self):
        now = [0.0]
        bucket = TokenBucket(2.0, 4.0, clock=lambda: now[0])
        # Burst of 4 goes through, the fifth must wait half a second.
        assert [bucket.try_acquire() for _ in range(4)] == [0.0] * 4
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)
        now[0] += wait
        assert bucket.try_acquire() == 0.0

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(0.0)
        assert all(bucket.try_acquire() == 0.0 for _ in range(1000))

    def test_failed_acquire_spends_nothing(self):
        now = [0.0]
        bucket = TokenBucket(1.0, 1.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        first = bucket.try_acquire()
        second = bucket.try_acquire()
        assert first == second == pytest.approx(1.0)


# -- dispatch-level behaviour ------------------------------------------------


class _StubEngine:
    """Minimal protocol engine with a controllable journal gauge."""

    name = "stub"

    def __init__(self):
        self.journal_depth = 0
        self.offered = []
        self.checkpoints = 0

    def offer(self, record):
        self.offered.append(record)

    def offer_batch(self, records):
        records = list(records)
        self.offered.extend(records)
        return len(records)

    def ingest(self, n):
        self.offered.extend([None] * n)

    def sample(self, k=None):
        return self.offered[: len(self.offered) if k is None else k]

    def sample_batch(self, k=None):
        raise TypeError("stub is scalar-only")

    def snapshot(self, k=None):
        return self.sample(k), len(self.offered)

    def stats(self):
        raise TypeError("stub has no stats")

    def checkpoint(self):
        self.checkpoints += 1

    def close(self):
        pass


def stub_server(**config):
    server = ReservoirServer(_StubEngine(), ServerConfig(**config))
    return server, server.open_session()


def call(server, session, op, args=None, *, v=PROTOCOL_VERSION, id=1):
    return server.dispatch(Request(op=op, id=id, args=args or {}, v=v),
                           session)


class TestDispatch:
    def test_unsupported_version(self):
        server, session = stub_server()
        response = call(server, session, "hello", v=PROTOCOL_VERSION + 1)
        assert not response.ok
        assert response.error.code == "unsupported_version"

    def test_unknown_op(self):
        server, session = stub_server()
        response = call(server, session, "transmogrify")
        assert response.error.code == "unknown_op"

    def test_malformed_frame_answers_bad_request(self):
        server, session = stub_server()
        reply = server.handle_frame(b"\x00\x00\x00\x03not", session)
        (body,) = FrameDecoder().feed(reply)
        response = Response.from_wire(body)
        assert response.error.code == "bad_request"
        assert response.id == 0

    def test_engine_type_error_maps_to_bad_request(self):
        server, session = stub_server()
        response = call(server, session, "stats")
        assert response.error.code == "bad_request"

    def test_busy_pushback_with_retry_after(self):
        server, session = stub_server(admission_depth=4,
                                      busy_retry_per_message=0.01)
        server.engine.journal_depth = 14
        response = call(server, session, "offer_batch", {"records": []})
        assert response.error.code == "busy"
        assert response.error.retry_after == pytest.approx(0.1)
        assert server.busy_rejections == 1
        # Reads are never admission-controlled.
        assert call(server, session, "sample", {"k": 0}).ok

    def test_rate_limit_is_per_session(self):
        now = [0.0]
        server = ReservoirServer(_StubEngine(),
                                 ServerConfig(rate_rps=1.0, rate_burst=2.0),
                                 clock=lambda: now[0])
        a, b = server.open_session(), server.open_session()
        assert call(server, a, "hello").ok
        assert call(server, a, "hello").ok
        limited = call(server, a, "hello")
        assert limited.error.code == "rate_limited"
        assert limited.error.retry_after == pytest.approx(1.0)
        # Session b has its own untouched bucket.
        assert call(server, b, "hello").ok

    def test_drain_rejects_work_but_answers_hello_and_close(self):
        server, session = stub_server()
        server.drain()
        assert server.engine.checkpoints == 1
        assert call(server, session, "sample").error.code == "shutting_down"
        assert call(server, session, "offer_batch",
                    {"records": []}).error.code == "shutting_down"
        assert call(server, session, "hello").ok
        assert call(server, session, "close").ok
        assert session.closed

    def test_hello_reports_engine_shape(self):
        server, session = stub_server()
        result = call(server, session, "hello").result
        assert result["protocol"] == PROTOCOL_VERSION
        assert result["engine"] == "stub"
        assert result["session"] == session.id

    def test_every_op_is_dispatchable(self):
        """No op constant is dead: each either succeeds or fails with a
        bad_request from the stub engine, never unknown_op."""
        for op in OPS:
            server, session = stub_server()
            response = call(server, session, op, {"records": [], "n": 0,
                                                  "record": [1, 1.0, 0.0,
                                                             ""]})
            if not response.ok:
                assert response.error.code == "bad_request", op


# -- client retry behaviour --------------------------------------------------


class TestClientRetries:
    def test_client_honours_retry_after_then_succeeds(self, tmp_path):
        engine = make_engine(tmp_path / "svc")
        server = ReservoirServer(engine,
                                 ServerConfig(admission_depth=0,
                                              busy_retry_per_message=0.5))
        naps = []

        def relieve(delay):
            naps.append(delay)
            engine.checkpoint()  # drains the journal: next try admits

        client = ServeClient(InlineTransport(server), sleep=relieve)
        try:
            engine.offer_batch(keyed_records(40))  # journal now non-empty
            admitted = client.offer_batch(keyed_records(8, start=1000))
            assert admitted == 8
            assert client.retries >= 1
            assert naps and all(d > 0 for d in naps)
        finally:
            client.close()
            engine.close()

    def test_client_gives_up_after_max_retries(self, tmp_path):
        engine = make_engine(tmp_path / "svc")
        server = ReservoirServer(engine, ServerConfig(admission_depth=0))
        client = ServeClient(InlineTransport(server), max_retries=3,
                             sleep=lambda d: None)
        try:
            engine.offer_batch(keyed_records(40))
            with pytest.raises(ServeError) as excinfo:
                client.offer_batch(keyed_records(8, start=1000))
            assert excinfo.value.code == "busy"
            assert client.retries == 3
        finally:
            client.close()
            engine.close()


# -- the twin-run guarantee --------------------------------------------------


def drive(reservoir_like):
    """One fixed call sequence against a Reservoir-protocol object."""
    out = {}
    reservoir_like.offer_batch(keyed_records(300))
    reservoir_like.offer(Record(key=9_000, value=9.0, timestamp=75.0))
    reservoir_like.offer_batch(keyed_records(200, start=10_000))
    out["sample"] = reservoir_like.sample(50)
    out["snapshot"] = reservoir_like.snapshot(25)
    out["batch"] = reservoir_like.sample_batch(40).to_records()
    reservoir_like.checkpoint()
    out["stats"] = reservoir_like.stats().as_dict()
    return out


class TestInlineTwin:
    def test_served_session_is_bit_exact_with_direct_calls(self, tmp_path):
        """The acceptance gate: identical samples, DiskStats, and clock
        from the same seed whether calls go through the wire protocol
        or straight into the engine."""
        direct_engine = make_engine(tmp_path / "direct", seed=11)
        served_engine = make_engine(tmp_path / "served", seed=11)
        server = ReservoirServer(served_engine)
        client = ServeClient.in_process(server)
        try:
            direct = drive(direct_engine)
            served = drive(client)
            assert served["sample"] == direct["sample"]
            assert served["snapshot"] == direct["snapshot"]
            assert served["batch"] == direct["batch"]
            assert served["stats"] == direct["stats"]  # io, clock, seen
            assert served["stats"]["clock"] == direct["stats"]["clock"]
            assert served["stats"]["io"] == direct["stats"]["io"]
        finally:
            client.close()
            direct_engine.close()
            served_engine.close()

    def test_estimates_match_direct_engine(self, tmp_path):
        direct_engine = make_engine(tmp_path / "direct", seed=3)
        served_engine = make_engine(tmp_path / "served", seed=3)
        server = ReservoirServer(served_engine)
        client = ServeClient.in_process(server)
        try:
            records = keyed_records(2_000)
            direct_engine.offer_batch(records)
            client.offer_batch(records)
            ours = client.estimate_sum(100)
            theirs = direct_engine.estimate_sum(100)
            assert ours.value == theirs.value
            assert ours.standard_error == theirs.standard_error
        finally:
            client.close()
            direct_engine.close()
            served_engine.close()

    def test_hello_describes_sharded_engine(self, tmp_path):
        engine = make_engine(tmp_path / "svc")
        server = ReservoirServer(engine)
        with ServeClient.in_process(server) as client:
            hello = client.hello()
            assert hello["shards"] == 4
            assert hello["capacity"] == engine.capacity
            assert hello["record_size"] == 32
        engine.close()


# -- statistics over the served path -----------------------------------------


class TestServedUniformity:
    def test_merged_served_samples_are_uniform(self, tmp_path):
        """Chi-square over many served sample() draws: every stream key
        appears in the merged samples at the uniform rate."""
        engine = make_engine(tmp_path / "svc", seed=29)
        server = ReservoirServer(engine)
        client = ServeClient.in_process(server)
        try:
            population = 1_600
            retained = 4 * 200  # shards x per-shard reservoir capacity
            client.offer_batch(keyed_records(population))
            counts = collections.Counter()
            draws, k = 150, 100
            for _ in range(draws):
                for record in client.sample(k):
                    counts[record.key] += 1
            # The reservoirs (plus their pending buffers) are frozen
            # between draws, so uniformity is over the resident records
            # of each shard: a shard's thinning must draw every one of
            # its resident keys at the same rate.  Round-robin
            # partitioning puts key i on shard i % 4.
            assert len(counts) >= retained
            for shard in range(4):
                observed = {key: c for key, c in counts.items()
                            if key % 4 == shard}
                uniform = draws * k / (4 * len(observed))
                expected = {key: uniform for key in observed}
                assert chi_square_p(observed, expected,
                                    min_expected=10.0) > P_MIN, shard
        finally:
            client.close()
            engine.close()


# -- drain durability --------------------------------------------------------


class TestDrainDurability:
    def test_drain_checkpoints_every_acknowledged_record(self, tmp_path):
        root = tmp_path / "svc"
        engine = make_engine(root, seed=5)
        server = ReservoirServer(engine)
        client = ServeClient.in_process(server)
        acknowledged = 0
        acknowledged += client.offer_batch(keyed_records(500))
        acknowledged += client.offer_batch(keyed_records(300, start=5_000))
        server.drain()
        client.close()
        engine.close()
        # Reopen from the checkpointed root: nothing acknowledged was
        # lost.
        with make_engine(root, seed=5) as reopened:
            assert reopened.stats().seen == acknowledged == 800
