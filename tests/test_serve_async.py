"""Real-socket tests for the asyncio serving front-end.

Marked ``serve`` and excluded from tier-1 (like the ``service``
multiprocessing lane): tier-1 proves the dispatch path through
:class:`~repro.serve.InlineTransport`; this file proves the event-loop
plumbing around it -- concurrent sessions, reads interleaving with
ingest, disconnects mid-request, rate limiting over the wire, and the
drain-on-shutdown durability guarantee.  Run with ``-m serve``.
"""

import asyncio

import pytest

from repro.core.geometric_file import GeometricFileConfig
from repro.serve import (
    AsyncServeClient,
    ReservoirServer,
    ServeError,
    ServerConfig,
)
from repro.serve.protocol import encode_frame
from repro.service import ShardedReservoir
from repro.storage import Record

pytestmark = [pytest.mark.serve, pytest.mark.timeout(120)]


def keyed_records(n, start=0):
    return [Record(key=start + i, value=float(start + i), timestamp=0.0)
            for i in range(n)]


def make_engine(root, *, seed=0):
    config = GeometricFileConfig(capacity=200, buffer_capacity=20,
                                 record_size=32, beta_records=4,
                                 retain_records=True, admission="uniform")
    return ShardedReservoir(root, config, shards=4, pool="inline",
                            seed=seed)


def serve(tmp_path, coro_factory, *, seed=0, config=None):
    """Start a server on a fresh engine, run the coroutine, shut down.

    Returns (coroutine result, post-shutdown engine stats) so tests
    can assert on what the drained engine ended up holding.
    """
    engine = make_engine(tmp_path / "svc", seed=seed)
    server = ReservoirServer(engine, config or ServerConfig())

    async def run():
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.shutdown()

    try:
        result = asyncio.run(run())
        return result, engine.stats()
    finally:
        engine.close()


class TestConcurrentSessions:
    def test_samples_interleave_with_ingest(self, tmp_path):
        """Many sessions: writers stream batches while readers sample
        continuously.  Every read completes with the full requested
        draw -- no reader ever blocks behind ingest or returns short.
        """
        writers, readers, rounds = 3, 3, 15

        async def writer(server, index):
            host, port = server.address
            async with await AsyncServeClient.connect(host, port) as client:
                for round_no in range(rounds):
                    base = 1_000_000 * (index + 1) + 1_000 * round_no
                    admitted = await client.offer_batch(
                        keyed_records(100, start=base))
                    assert admitted == 100
                return rounds * 100

        async def reader(server):
            host, port = server.address
            draws = []
            async with await AsyncServeClient.connect(host, port) as client:
                # Wait until enough records exist for a k=50 merged draw.
                while (await client.snapshot(0))[1] < 200:
                    await asyncio.sleep(0.01)
                for _ in range(rounds):
                    records = await client.sample(50)
                    draws.append(len(records))
            return draws

        async def load(server):
            seed_engine = await AsyncServeClient.connect(*server.address)
            await seed_engine.offer_batch(keyed_records(400, start=77))
            await seed_engine.close()
            results = await asyncio.gather(
                *(writer(server, i) for i in range(writers)),
                *(reader(server) for _ in range(readers)))
            return results

        results, stats = serve(tmp_path, load)
        written = results[:writers]
        assert written == [1500] * writers
        for draws in results[writers:]:
            assert draws == [50] * rounds
        assert stats.seen == 400 + writers * 1500

    def test_sessions_are_isolated(self, tmp_path):
        async def load(server):
            host, port = server.address
            a = await AsyncServeClient.connect(host, port)
            b = await AsyncServeClient.connect(host, port)
            hello_a, hello_b = await a.hello(), await b.hello()
            await a.close()
            # Closing a does not affect b.
            await b.offer_batch(keyed_records(10))
            await b.close()
            return hello_a["session"], hello_b["session"]

        (sid_a, sid_b), _ = serve(tmp_path, load)
        assert sid_a != sid_b


class TestFaults:
    def test_client_disconnect_mid_request_leaves_server_up(self, tmp_path):
        async def load(server):
            host, port = server.address
            # A rude client: sends a torn frame (prefix promises more
            # bytes than it delivers) and vanishes.
            reader, writer = await asyncio.open_connection(host, port)
            frame = encode_frame({"v": 1, "id": 1, "op": "hello",
                                  "args": {}})
            writer.write(frame[: len(frame) - 3])
            await writer.drain()
            writer.close()
            # A polite client on the same server still gets answers.
            async with await AsyncServeClient.connect(host, port) as ok:
                await ok.offer_batch(keyed_records(50))
                return (await ok.snapshot(0))[1]

        seen, stats = serve(tmp_path, load)
        assert seen == 50
        assert stats.seen == 50

    def test_rate_limit_rejection_over_the_wire(self, tmp_path):
        config = ServerConfig(rate_rps=5.0, rate_burst=2.0)

        async def load(server):
            host, port = server.address
            client = await AsyncServeClient.connect(host, port)
            client.max_retries = 0  # surface the rejection
            with pytest.raises(ServeError) as excinfo:
                for _ in range(10):
                    await client.stats()
            await client.close()
            return excinfo.value

        error, _ = serve(tmp_path, load, config=config)
        assert error.code == "rate_limited"
        assert error.retry_after > 0

    def test_rate_limited_client_retries_to_success(self, tmp_path):
        config = ServerConfig(rate_rps=50.0, rate_burst=2.0)

        async def load(server):
            host, port = server.address
            async with await AsyncServeClient.connect(host, port) as client:
                for i in range(8):
                    await client.offer_batch(keyed_records(10, start=10 * i))
                return client.retries

        retries, stats = serve(tmp_path, load, config=config)
        assert retries > 0  # the bucket did throttle...
        assert stats.seen == 80  # ...but every batch landed


class TestDrainOnShutdown:
    def test_shutdown_checkpoints_acknowledged_records(self, tmp_path):
        root = tmp_path / "svc"
        engine = make_engine(root, seed=13)
        server = ReservoirServer(engine)

        async def run():
            await server.start()
            host, port = server.address
            acknowledged = 0
            async with await AsyncServeClient.connect(host, port) as client:
                for i in range(6):
                    acknowledged += await client.offer_batch(
                        keyed_records(150, start=1_000 * i))
            await server.shutdown()
            return acknowledged

        acknowledged = asyncio.run(run())
        engine.close()
        assert acknowledged == 900
        # Reopen from the drained root: every acknowledged record is
        # durable.
        with make_engine(root, seed=13) as reopened:
            assert reopened.stats().seen == 900

    def test_requests_after_drain_get_shutting_down(self, tmp_path):
        engine = make_engine(tmp_path / "svc")
        server = ReservoirServer(engine)

        async def run():
            await server.start()
            host, port = server.address
            client = await AsyncServeClient.connect(host, port)
            await client.offer_batch(keyed_records(20))
            server.draining = True  # drain flag flips mid-session
            client.max_retries = 0
            with pytest.raises(ServeError) as excinfo:
                await client.sample(5)
            code = excinfo.value.code
            await client.close()  # close is still answered while draining
            await server.shutdown()
            return code

        code = asyncio.run(run())
        engine.close()
        assert code == "shutting_down"
