"""Tier-1 tests for the sharded sampling service (inline pool).

Everything here runs the real :class:`~repro.service.worker.ShardWorker`
state machine -- partitioning, journaling, checkpoint acks, crash
recovery, merged queries -- through the deterministic single-process
:class:`~repro.service.pool.InlinePool`.  Real-multiprocessing coverage
of the identical protocol lives in ``test_service_mp.py`` behind the
``service`` marker.

The two chi-square tests are the subsystem's acceptance bar: a merged
``sample(k)`` over 4 shards must be indistinguishable from uniform
sampling of the concatenated stream, both when shards retain their
whole partition (isolating the hypergeometric merge) and when eviction
is active end to end (the full pipeline, compared head-to-head against
a single-reservoir service over the same stream).
"""

from __future__ import annotations

import collections

import numpy as np
import pytest

from conftest import keyed_records
from repro.core.geometric_file import GeometricFileConfig
from repro.obs import MetricsRegistry, TraceSink, aggregate_stats, stats_from_dict
from repro.service import (
    HashPartitioner,
    RoundRobinPartitioner,
    ShardedReservoir,
    allocate_counts,
    make_partitioner,
    merge_shard_samples,
    mix64,
)
from test_batch_ingest import P_MIN, chi_square_p


def service_config(capacity=200, buffer_capacity=20, record_size=32,
                   **kwargs):
    kwargs.setdefault("beta_records", 4)
    kwargs.setdefault("retain_records", True)
    kwargs.setdefault("admission", "uniform")
    return GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=record_size, **kwargs)


def make_service(root, *, shards=4, seed=0, **kwargs):
    kwargs.setdefault("config", service_config())
    config = kwargs.pop("config")
    return ShardedReservoir(root, config, shards=shards, pool="inline",
                            seed=seed, **kwargs)


# -- partitioning ------------------------------------------------------------


class TestPartitioners:
    def test_hash_partition_is_deterministic_and_complete(self):
        records = keyed_records(500)
        partitioner = HashPartitioner(4)
        parts = partitioner.split(records)
        assert len(parts) == 4
        assert sorted(r.key for part in parts for r in part) == list(
            range(500))
        again = HashPartitioner(4).split(records)
        assert [[r.key for r in p] for p in parts] == [
            [r.key for r in p] for p in again]

    def test_hash_partition_spreads_keys(self):
        parts = HashPartitioner(4).split(keyed_records(2000))
        sizes = [len(p) for p in parts]
        assert min(sizes) > 300  # far from degenerate at fixed keys

    def test_hash_partition_routes_none_round_robin(self):
        parts = HashPartitioner(4).split([None] * 10)
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_round_robin_balances_within_one(self):
        partitioner = RoundRobinPartitioner(3)
        parts = partitioner.split(keyed_records(10))
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        # The rotation carries across calls.
        more = partitioner.split(keyed_records(2))
        total = [a + len(b) for a, b in zip(sizes, more)]
        assert max(total) - min(total) <= 1

    def test_split_count_sums(self):
        partitioner = make_partitioner("round-robin", 4)
        assert sum(partitioner.split_count(1003)) == 1003

    def test_mix64_is_a_bijection_sample(self):
        values = {mix64(i) for i in range(10_000)}
        assert len(values) == 10_000

    def test_mix64_array_matches_scalar(self):
        from repro.service.partition import mix64_array

        keys = [0, 1, -1, 2 ** 63 - 1, -2 ** 63, 0xDEADBEEF, 42]
        vectorised = mix64_array(np.array(keys, dtype=np.int64))
        assert vectorised.tolist() == [mix64(k) for k in keys]

    def test_split_batch_matches_split_hash(self):
        """Columnar and list hash routing are record-for-record equal."""
        from repro.storage.recordbatch import RecordBatch
        from repro.storage.records import RecordSchema

        records = keyed_records(500)
        batch = RecordBatch.from_records(RecordSchema(32), records)
        list_parts = HashPartitioner(4).split(records)
        batch_parts = HashPartitioner(4).split_batch(batch)
        assert [[r.key for r in part] for part in list_parts] == [
            part.keys.tolist() for part in batch_parts]

    def test_split_batch_matches_split_round_robin(self):
        """Including the rotation counter carrying across calls."""
        from repro.storage.recordbatch import RecordBatch
        from repro.storage.records import RecordSchema

        schema = RecordSchema(32)
        by_list = RoundRobinPartitioner(3)
        by_batch = RoundRobinPartitioner(3)
        for n in (7, 10, 1, 5):
            records = keyed_records(n)
            list_parts = by_list.split(records)
            batch_parts = by_batch.split_batch(
                RecordBatch.from_records(schema, records))
            assert [[r.key for r in part] for part in list_parts] == [
                part.keys.tolist() for part in batch_parts]
        assert by_list._next == by_batch._next

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_partitioner("modulo", 4)


# -- merge machinery ---------------------------------------------------------


class TestMerge:
    def test_allocate_counts_sums_to_k(self):
        rng = np.random.default_rng(0)
        for k in (0, 1, 37, 100):
            counts = allocate_counts(rng, [250, 100, 400, 250], k)
            assert sum(counts) == k
            assert all(c >= 0 for c in counts)

    def test_allocate_counts_rejects_overdraw(self):
        with pytest.raises(ValueError):
            allocate_counts(np.random.default_rng(0), [5, 5], 11)

    def test_allocation_follows_seen_proportions(self):
        rng = np.random.default_rng(1)
        totals = [0, 0]
        for _ in range(200):
            a, b = allocate_counts(rng, [300, 100], 40)
            totals[0] += a
            totals[1] += b
        # E[a] = 30 per draw; a loose 3-sigma band at fixed seed.
        assert abs(totals[0] - 6000) < 300

    def test_merge_rejects_short_shard(self):
        payloads = [
            {"seen": 1000, "size": 3,
             "records": keyed_records(3)},
            {"seen": 10, "size": 10, "records": keyed_records(10)},
        ]
        with pytest.raises(ValueError, match="smallest shard reservoir"):
            merge_shard_samples(np.random.default_rng(0), payloads, 8)


# -- ingest / stats round trip ----------------------------------------------


class TestRoundTrip:
    def test_seen_matches_offered(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            records = keyed_records(1200)
            for start in range(0, 1200, 100):
                service.offer_batch(records[start:start + 100])
            stats = service.stats()
            assert stats.seen == 1200
            assert stats.extra["shards"] == 4
            assert sum(stats.extra["seen_per_shard"]) == 1200
            assert stats.capacity == service.capacity == 800

    def test_per_shard_seen_matches_partitioner(self, tmp_path):
        records = keyed_records(900)
        expected = [len(p) for p in HashPartitioner(4).split(records)]
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(records)
            assert [s.seen for s in service.shard_stats()] == expected

    def test_count_only_ingest(self, tmp_path):
        config = service_config(retain_records=False)
        with make_service(tmp_path / "svc", config=config) as service:
            service.ingest(4000)
            assert service.stats().seen == 4000

    def test_sample_has_k_distinct_offered_keys(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(keyed_records(600))
            sample = service.sample(64)
            keys = [r.key for r in sample]
            assert len(keys) == 64
            assert len(set(keys)) == 64
            assert all(0 <= key < 600 for key in keys)
            assert service.sample(0) == []

    def test_use_after_close_raises(self, tmp_path):
        service = make_service(tmp_path / "svc")
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError):
            service.offer_batch(keyed_records(2))
        with pytest.raises(RuntimeError):
            service.stats()

    def test_schema_mismatched_batch_rejected_before_journal(
            self, tmp_path):
        """A batch the shards could not apply must be refused up front.

        Journaling it first would poison crash recovery (replay
        re-sends it forever); and on the shm transport the slab codec
        would silently misdecode a weighted or resized layout.  So
        ``offer_batch`` validates the schema before the hot cache, the
        journal, or any pool sees the batch.
        """
        from repro.storage.recordbatch import RecordBatch
        from repro.storage.records import RecordSchema

        with make_service(tmp_path / "svc") as service:
            weighted = RecordBatch.from_records(
                RecordSchema(32, weighted=True), keyed_records(10),
                weights=[1.0] * 10)
            with pytest.raises(ValueError, match="schema"):
                service.offer_batch(weighted)
            resized = RecordBatch.from_records(RecordSchema(48),
                                               keyed_records(10))
            with pytest.raises(ValueError, match="schema"):
                service.offer_batch(resized)
            assert service.stats().seen == 0
            assert service.journal_depth == 0
            # The matching schema still flows.
            good = RecordBatch.from_records(RecordSchema(32),
                                            keyed_records(10))
            assert service.offer_batch(good) == 10
            assert service.stats().seen == 10

    def test_invalid_construction(self, tmp_path):
        with pytest.raises(ValueError):
            make_service(tmp_path / "a", shards=0)
        with pytest.raises(ValueError):
            ShardedReservoir(tmp_path / "b", service_config(),
                             pool="threads")
        with pytest.raises(ValueError):
            # Shards must hold uniform samples of their partitions.
            make_service(tmp_path / "c",
                         config=service_config(admission="always"))


# -- uniformity of merged samples (the acceptance bar) -----------------------


class TestMergedUniformity:
    def test_merge_is_uniform_without_eviction(self, tmp_path):
        """4-shard sample(k) is uniform when shards keep everything.

        With 600 records over 4x200 capacity no shard evicts, so each
        reservoir IS its partition and the chi-square isolates the
        hypergeometric allocation plus the workers' uniform subset
        draws -- the merge machinery itself.
        """
        trials, k, n = 200, 60, 600
        counts = collections.Counter()
        with make_service(tmp_path / "svc", seed=11) as service:
            service.offer_batch(keyed_records(n))
            for _ in range(trials):
                for record in service.sample(k):
                    counts[record.key] += 1
        expected = {key: trials * k / n for key in range(n)}
        assert chi_square_p(counts, expected) > P_MIN

    def test_full_pipeline_matches_single_reservoir(self, tmp_path):
        """Sharded sampling with eviction == single-reservoir sampling.

        Per trial, the same 240-record stream runs through a 4-shard
        service (40-record shard reservoirs, eviction active) and a
        single-reservoir service of the same total capacity; one
        merged k-draw from each is tallied per key.  Both tallies must
        be uniform (every stream record equally likely at k/n), and
        homogeneous against each other -- the sharded pipeline is
        statistically indistinguishable from the single reservoir the
        paper maintains.
        """
        trials, k, n = 150, 32, 240
        records = keyed_records(n)
        sharded_counts = collections.Counter()
        single_counts = collections.Counter()
        for trial in range(trials):
            config = service_config(capacity=40, buffer_capacity=8)
            with make_service(tmp_path / f"s4-{trial}", seed=trial,
                              config=config) as service:
                service.offer_batch(records)
                for record in service.sample(k):
                    sharded_counts[record.key] += 1
            config = service_config(capacity=160, buffer_capacity=32)
            with make_service(tmp_path / f"s1-{trial}", shards=1,
                              seed=trial, config=config) as service:
                service.offer_batch(records)
                for record in service.sample(k):
                    single_counts[record.key] += 1
        expected = {key: trials * k / n for key in range(n)}
        assert chi_square_p(sharded_counts, expected) > P_MIN
        assert chi_square_p(single_counts, expected) > P_MIN
        # Two-sample homogeneity: sharded vs single, same categories.
        assert chi_square_p(
            sharded_counts,
            {key: single_counts[key] for key in range(n)}) > P_MIN


# -- AQP over merged samples -------------------------------------------------


class TestEstimates:
    def test_estimate_sum_covers_truth(self, tmp_path):
        n = 800
        config = service_config(capacity=100, buffer_capacity=10)
        with make_service(tmp_path / "svc", seed=3,
                          config=config) as service:
            service.offer_batch(keyed_records(n))
            estimate = service.estimate_sum(80)
            truth = float(sum(range(n)))
            assert estimate.interval(0.99).contains(truth)
            assert estimate.standard_error > 0

    def test_estimate_count_and_avg(self, tmp_path):
        n = 800
        config = service_config(capacity=100, buffer_capacity=10)
        with make_service(tmp_path / "svc", seed=5,
                          config=config) as service:
            service.offer_batch(keyed_records(n))
            count = service.estimate_count(80, lambda r: r.key < 400)
            assert count.interval(0.99).contains(400)
            avg = service.estimate_avg(80, value=lambda r: r.value)
            assert avg.interval(0.99).contains((n - 1) / 2)


# -- durability, journaling, crash recovery ----------------------------------


class TestRecovery:
    def test_journal_prunes_on_checkpoint(self, tmp_path):
        with make_service(tmp_path / "svc",
                          checkpoint_batches=4) as service:
            records = keyed_records(400)
            for start in range(0, 400, 40):
                service.offer_batch(records[start:start + 40])
            # Auto-checkpoints every 4 batches bound the journal.
            assert service.journal_depth <= 4 * service.shards
            service.checkpoint()
            assert service.journal_depth == 0

    def test_kill_respawn_loses_and_duplicates_nothing(self, tmp_path):
        """The acceptance test: crashes cost no records and no dupes.

        Two mid-stream crashes (one mid-protocol, one hard kill), with
        eviction active and checkpoints lagging the stream; afterwards
        the service-level seen, the per-shard seen, the obs counters,
        and the on-disk reservoir contents must all reconcile exactly
        with the 1200 records offered.
        """
        records = keyed_records(1200)
        expected_parts = HashPartitioner(4).split(records)
        config = service_config(capacity=100, buffer_capacity=10)
        registry, trace = MetricsRegistry(), TraceSink()
        with make_service(tmp_path / "svc", config=config,
                          checkpoint_batches=2) as service:
            service.instrument(registry, trace)
            batches = [records[i:i + 40] for i in range(0, 1200, 40)]
            for i, batch in enumerate(batches):
                if i == 10:
                    service.kill_shard(1)
                if i == 20:
                    service.kill_shard(3, hard=True)
                service.offer_batch(batch)
            stats = service.stats()
            assert stats.seen == 1200  # no loss, no double count
            assert [s.seen for s in service.shard_stats()] == [
                len(p) for p in expected_parts]
            assert service.recoveries == 2
            assert stats.extra["recoveries"] == 2
            assert registry.value("events.shard_recovery",
                                  structure=service.name) == 2
            assert trace.counts().get("shard_recovery") == 2
            specs = service.specs
        # Reopen each shard straight from its checkpoint: contents must
        # be a duplicate-free subset of exactly that shard's partition.
        for spec, part in zip(specs, expected_parts):
            managed = spec.restore()
            assert managed.stats().seen == len(part)
            keys = [r.key for r in managed.sample()]
            assert len(keys) == len(set(keys))
            assert set(keys) <= {r.key for r in part}
            assert len(keys) == min(len(part), config.capacity)

    def test_query_after_crash_recovers_first(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(keyed_records(600))
            service.kill_shard(2)
            assert service.stats().seen == 600
            assert service.recoveries == 1
            assert len(service.sample(40)) == 40

    def test_explicit_recover(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(keyed_records(200))
            service.kill_shard(0, hard=True)
            service.kill_shard(1)
            assert service.recover() == 2
            assert service.recover() == 0
            assert service.stats().seen == 200

    def test_reopen_from_root_restores_every_shard(self, tmp_path):
        root = tmp_path / "svc"
        with make_service(root, seed=9) as service:
            service.offer_batch(keyed_records(500))
            before = [s.seen for s in service.shard_stats()]
        with make_service(root, seed=9) as service:
            assert [s.seen for s in service.shard_stats()] == before
            service.offer_batch(keyed_records(100))
            assert service.stats().seen == 600

    def test_kill_bad_shard_id(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            with pytest.raises(ValueError):
                service.kill_shard(7)


# -- stats aggregation -------------------------------------------------------


class TestAggregation:
    def test_stats_from_dict_round_trip(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(keyed_records(300))
            snapshot = service.shard_stats()[0]
        rebuilt = stats_from_dict(snapshot.as_dict())
        assert rebuilt.seen == snapshot.seen
        assert rebuilt.clock == snapshot.clock
        assert rebuilt.io.seeks == snapshot.io.seeks

    def test_aggregate_clock_is_slowest_shard(self, tmp_path):
        with make_service(tmp_path / "svc") as service:
            service.offer_batch(keyed_records(900))
            shard_stats = service.shard_stats()
            total = service.stats()
        assert total.seen == sum(s.seen for s in shard_stats)
        assert total.clock == max(s.clock for s in shard_stats)
        assert total.io.seeks == sum(s.io.seeks for s in shard_stats)

    def test_aggregate_stats_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_stats([])
