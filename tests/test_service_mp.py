"""Real-multiprocessing tests for the sharded service.

The inline-pool suite (``test_service.py``, tier-1) already exercises
every line of the shard state machine; what only a real
:class:`~repro.service.pool.ProcessPool` can exercise is the transport
-- pickling specs and batches across process boundaries, bounded-queue
backpressure, SIGKILL death detection, and respawned worker processes
restoring from checkpoints written by their predecessors.  That is
what this file covers, with deliberately small workloads.

Excluded from tier-1 by the ``service`` marker; run with::

    PYTHONPATH=src python -m pytest tests/test_service_mp.py -m service
"""

from __future__ import annotations

import pytest

from conftest import keyed_records
from repro.service import ShardedReservoir
from test_service import service_config

pytestmark = pytest.mark.service


def make_process_service(root, *, shards=3, seed=0, **kwargs):
    kwargs.setdefault("config", service_config())
    config = kwargs.pop("config")
    kwargs.setdefault("timeout", 120.0)
    return ShardedReservoir(root, config, shards=shards, pool="process",
                            seed=seed, **kwargs)


def test_round_trip_across_processes(tmp_path):
    with make_process_service(tmp_path / "svc") as service:
        records = keyed_records(900)
        for start in range(0, 900, 150):
            service.offer_batch(records[start:start + 150])
        stats = service.stats()
        assert stats.seen == 900
        assert sum(stats.extra["seen_per_shard"]) == 900
        sample = service.sample(45)
        keys = [r.key for r in sample]
        assert len(keys) == 45 and len(set(keys)) == 45
        assert all(0 <= key < 900 for key in keys)
        assert service.estimate_sum(45).interval(0.999).contains(
            float(sum(range(900))))


def test_hard_kill_recovers_without_loss(tmp_path):
    with make_process_service(tmp_path / "svc",
                              checkpoint_batches=2) as service:
        records = keyed_records(1200)
        batches = [records[i:i + 100] for i in range(0, 1200, 100)]
        for i, batch in enumerate(batches):
            if i == 6:
                service.kill_shard(1, hard=True)  # SIGKILL mid-stream
            service.offer_batch(batch)
        assert service.stats().seen == 1200
        assert service.recoveries >= 1
        assert service.last_recovery_seconds < 60.0
        assert len(service.sample(30)) == 30


def test_graceful_close_then_reopen(tmp_path):
    root = tmp_path / "svc"
    with make_process_service(root, seed=4) as service:
        service.offer_batch(keyed_records(600))
        before = [s.seen for s in service.shard_stats()]
    with make_process_service(root, seed=4) as service:
        assert [s.seen for s in service.shard_stats()] == before
        service.offer_batch(keyed_records(150))
        assert service.stats().seen == 750


def test_backpressure_bounded_queue(tmp_path):
    """A depth-1 inbox forces the producer to stall, not to buffer."""
    with make_process_service(tmp_path / "svc", shards=2,
                              queue_depth=1) as service:
        records = keyed_records(2000)
        for start in range(0, 2000, 50):
            service.offer_batch(records[start:start + 50])
        assert service.stats().seen == 2000
    # Not asserted > 0: a fast consumer can legally keep up, but the
    # counter must at least exist and never go negative.
    assert service.backpressure_stalls >= 0
