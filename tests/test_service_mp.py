"""Real-multiprocessing tests for the sharded service.

The inline-pool suite (``test_service.py``, tier-1) already exercises
every line of the shard state machine; what only a real
:class:`~repro.service.pool.ProcessPool` can exercise is the transport
-- pickling specs and batches across process boundaries, bounded-queue
backpressure, SIGKILL death detection, and respawned worker processes
restoring from checkpoints written by their predecessors.  That is
what this file covers, with deliberately small workloads.

Excluded from tier-1 by the ``service`` marker; run with::

    PYTHONPATH=src python -m pytest tests/test_service_mp.py -m service
"""

from __future__ import annotations

import time

import pytest

from conftest import keyed_records
from repro.service import (
    HAVE_SHM,
    ProcessPool,
    ShardSpec,
    ShardedReservoir,
    default_device_spec,
)
from repro.storage.recordbatch import RecordBatch
from repro.storage.records import RecordSchema
from test_service import service_config

pytestmark = pytest.mark.service

needs_shm = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable")


def make_process_service(root, *, shards=3, seed=0, **kwargs):
    kwargs.setdefault("config", service_config())
    config = kwargs.pop("config")
    kwargs.setdefault("timeout", 120.0)
    return ShardedReservoir(root, config, shards=shards, pool="process",
                            seed=seed, **kwargs)


def keyed_batches(n, batch_size, record_size=32):
    """The keyed_records stream as columnar batches."""
    schema = RecordSchema(record_size)
    records = keyed_records(n)
    return [RecordBatch.from_records(schema, records[i:i + batch_size])
            for i in range(0, n, batch_size)]


def test_round_trip_across_processes(tmp_path):
    with make_process_service(tmp_path / "svc") as service:
        records = keyed_records(900)
        for start in range(0, 900, 150):
            service.offer_batch(records[start:start + 150])
        stats = service.stats()
        assert stats.seen == 900
        assert sum(stats.extra["seen_per_shard"]) == 900
        sample = service.sample(45)
        keys = [r.key for r in sample]
        assert len(keys) == 45 and len(set(keys)) == 45
        assert all(0 <= key < 900 for key in keys)
        assert service.estimate_sum(45).interval(0.999).contains(
            float(sum(range(900))))


def test_hard_kill_recovers_without_loss(tmp_path):
    with make_process_service(tmp_path / "svc",
                              checkpoint_batches=2) as service:
        records = keyed_records(1200)
        batches = [records[i:i + 100] for i in range(0, 1200, 100)]
        for i, batch in enumerate(batches):
            if i == 6:
                service.kill_shard(1, hard=True)  # SIGKILL mid-stream
            service.offer_batch(batch)
        assert service.stats().seen == 1200
        assert service.recoveries >= 1
        assert service.last_recovery_seconds < 60.0
        assert len(service.sample(30)) == 30


def test_graceful_close_then_reopen(tmp_path):
    root = tmp_path / "svc"
    with make_process_service(root, seed=4) as service:
        service.offer_batch(keyed_records(600))
        before = [s.seen for s in service.shard_stats()]
    with make_process_service(root, seed=4) as service:
        assert [s.seen for s in service.shard_stats()] == before
        service.offer_batch(keyed_records(150))
        assert service.stats().seen == 750


def test_backpressure_bounded_queue(tmp_path):
    """A depth-1 inbox forces the producer to stall, not to buffer."""
    with make_process_service(tmp_path / "svc", shards=2,
                              queue_depth=1) as service:
        records = keyed_records(2000)
        for start in range(0, 2000, 50):
            service.offer_batch(records[start:start + 50])
        assert service.stats().seen == 2000
    # Not asserted > 0: a fast consumer can legally keep up, but the
    # counter must at least exist and never go negative.
    assert service.backpressure_stalls >= 0


# -- the shared-memory data plane --------------------------------------------


@needs_shm
def test_shm_round_trip_with_record_batches(tmp_path):
    """Columnar batches ride the rings in both directions."""
    with make_process_service(tmp_path / "svc", ipc="shm") as service:
        for batch in keyed_batches(900, 150):
            service.offer_batch(batch)
        stats = service.stats()
        assert stats.seen == 900
        ipc = service.ipc_stats()
        assert ipc["transport"] == "shm"
        assert ipc["fallback_slabs"] == 0
        ingest_bytes = ipc["zero_copy_bytes"]
        assert ingest_bytes == 900 * 32  # every batch went zero-copy
        merged = service.sample_batch(45)
        assert len(merged) == 45
        keys = merged.keys.tolist()
        assert len(set(keys)) == 45 and all(0 <= k < 900 for k in keys)
        # The reply direction is zero-copy too: the counter must have
        # grown by the shard replies the merged sample drew from.
        assert service.ipc_stats()["zero_copy_bytes"] > ingest_bytes


@needs_shm
def test_transports_are_bit_exact(tmp_path):
    """inline / queue / shm twins: same samples, same shard stats.

    The data plane must be invisible to the sampling math -- this is
    the ISSUE's twin-run discipline, asserted end to end: identical
    merged sample keys and identical per-shard stats dicts (seen,
    DiskStats, simulated clock) across all three transports.
    """
    outcomes = []
    for name, kwargs in (("inline", {"pool": "inline"}),
                         ("process-queue", {"pool": "process",
                                            "ipc": "queue"}),
                         ("process-shm", {"pool": "process",
                                          "ipc": "shm"})):
        config = service_config()
        with ShardedReservoir(tmp_path / name, config, shards=3,
                              seed=7, timeout=120.0, **kwargs) as service:
            for batch in keyed_batches(1200, 100):
                service.offer_batch(batch)
            merged = service.sample_batch(60)
            outcomes.append({
                "sample": merged.keys.tolist(),
                "shards": [s.as_dict() for s in service.shard_stats()],
            })
    assert outcomes[0] == outcomes[1] == outcomes[2]


@needs_shm
def test_hard_kill_with_slabs_in_flight(tmp_path):
    """SIGKILL mid-stream on the shm transport loses nothing.

    The ring is a transport, not a store: after the kill the
    supervisor discards the dead shard's rings and replays its journal
    from the last checkpoint, so every acknowledged record is still
    counted and sampled.  ``stats().seen`` is the zero-loss assertion:
    it sums what the (respawned) workers actually applied.
    """
    with make_process_service(tmp_path / "svc", ipc="shm",
                              checkpoint_batches=2) as service:
        batches = keyed_batches(1200, 100)
        for i, batch in enumerate(batches):
            if i == 6:
                service.kill_shard(1, hard=True)  # slabs in flight
            service.offer_batch(batch)
        assert service.stats().seen == 1200
        assert service.recoveries >= 1
        merged = service.sample_batch(30)
        assert len(merged) == 30
        assert all(0 <= k < 1200 for k in merged.keys.tolist())


def make_pool(root, **kwargs):
    config = service_config()
    spec = ShardSpec(0, str(root), "geometric", config,
                     default_device_spec("geometric", config), seed=3)
    return ProcessPool([spec], **kwargs)


@needs_shm
def test_schema_mismatched_batch_never_rides_the_ring(tmp_path):
    """A batch that is not the shard's declared layout skips the ring.

    The slab codec decodes with the shard schema, so a weighted (or
    resized) batch on the ring would shift every field; the pool must
    route it over the pickled queue (which carries the batch's own
    schema) and count the fallback, leaving the ring untouched.
    """
    pool = make_pool(tmp_path / "s0", ipc="shm")
    try:
        assert pool.recv(0, timeout=60.0)[0] == "ready"
        weighted = RecordBatch.from_records(
            RecordSchema(32, weighted=True), keyed_records(10),
            weights=[1.0] * 10)
        pool.send(0, ("batch", 1, weighted))
        assert pool.fallback_slabs == 1
        assert pool.zero_copy_bytes == 0
        assert pool.ring_depth(0) == 0
    finally:
        pool.kill(0)
        pool.close()


@needs_shm
def test_drain_counts_dropped_untranslatable_replies(tmp_path):
    """drain() survives a stub whose frame never arrived.

    A worker that dies between publishing a reply stub and its frame
    (or mid-frame) leaves an untranslatable stub on the outbox: drain
    must drop exactly that reply -- counted in ``dropped_replies`` --
    while still delivering later queue-only replies such as late
    checkpoint acks.
    """
    pool = make_pool(tmp_path / "s0", ipc="shm")
    try:
        assert pool.recv(0, timeout=60.0)[0] == "ready"
        batch = RecordBatch.from_records(RecordSchema(32),
                                         keyed_records(50))
        pool.send(0, ("batch", 1, batch))
        pool.send(0, ("sample", 7, 5))  # reply rides the outbound ring
        pool.send(0, ("checkpoint",))  # queue-only ack behind the stub
        ring = pool._out_rings[0]
        deadline = time.monotonic() + 30.0
        while ring.used_bytes == 0:
            assert time.monotonic() < deadline, "reply frame never came"
            time.sleep(0.005)
        # Steal the reply frame (the parent is the ring's consumer, so
        # this is legal): its stub on the outbox is now orphaned,
        # exactly as if the frame had been torn by the worker's death.
        slab = ring.try_pop()
        assert slab is not None and slab.seq == 7
        ring.pop_done(slab)
        while True:  # both replies queued before the kill
            try:
                if pool._outboxes[0].qsize() >= 2:
                    break
            except NotImplementedError:  # pragma: no cover - macOS
                time.sleep(0.5)
                break
            assert time.monotonic() < deadline, "acks never queued"
            time.sleep(0.005)
        pool.kill(0)
        drained = []
        while not any(r[0] == "checkpointed" for r in drained):
            assert time.monotonic() < deadline, "ack never drained"
            drained.extend(pool.drain(0))
            time.sleep(0.005)
        assert pool.dropped_replies == 1
        assert not any(r[0].startswith("sample") for r in drained)
    finally:
        pool.close()


@needs_shm
def test_oversize_slab_falls_back_to_queue(tmp_path):
    """Batches too big for the ring degrade to pickling, correctly.

    A 1 KiB ring cannot take a ~50-record per-shard frame (a frame
    needs twice its size free in the worst wrap case), so every
    sub-batch must fall back to the queue path -- same records, same
    results, non-zero ``fallback_slabs``.
    """
    with make_process_service(tmp_path / "svc", ipc="shm",
                              ring_bytes=1024) as service:
        for batch in keyed_batches(900, 150):
            service.offer_batch(batch)
        assert service.stats().seen == 900
        ipc = service.ipc_stats()
        assert ipc["transport"] == "shm"
        assert ipc["fallback_slabs"] > 0
        sample = service.sample(45)
        assert len({r.key for r in sample}) == 45
