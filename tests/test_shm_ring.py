"""Tier-1 tests for the shared-memory slab ring (``repro.service.shm``).

The ring is the sharded service's data plane; these tests pin its
framing codec (header checksum, trailer stamp, pad-frame wrap), its
SPSC FIFO discipline across wrap-around, torn-write *detection* (the
ring never decodes garbage -- it raises), and the zero-copy
``RecordBatch`` round trip the transport is built on.  Everything runs
single-process; the cross-process behaviour rides the same code paths
and is covered by ``test_service_mp.py -m service``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import keyed_records
from repro.service.shm import (
    CONTROL_BYTES,
    FLAG_WEIGHTED,
    FRAME_ALIGN,
    HAVE_SHM,
    HEADER_BYTES,
    KIND_DATA,
    SlabRing,
    TRAILER_BYTES,
    TornSlabError,
    check_trailer,
    decode_header,
    encode_header,
    encode_trailer,
    frame_bytes,
)
from repro.storage.recordbatch import RecordBatch
from repro.storage.records import RecordSchema

pytestmark = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable")


# -- framing codec -----------------------------------------------------------


@given(kind=st.integers(0, 0xFFFF),
       flags=st.integers(0, 0xFFFF),
       seq=st.integers(0, 2 ** 64 - 1),
       n_records=st.integers(0, 0xFFFFFFFF),
       n_bytes=st.integers(0, 0xFFFFFFFF))
@settings(max_examples=200, deadline=None)
def test_header_codec_round_trip_property(kind, flags, seq, n_records,
                                          n_bytes):
    """decode(encode(h)) == h across the full range of every field."""
    buf = encode_header(kind, flags, seq, n_records, n_bytes)
    assert len(buf) == HEADER_BYTES
    assert decode_header(buf) == (kind, flags, seq, n_records, n_bytes)


@given(position=st.integers(0, HEADER_BYTES - TRAILER_BYTES - 1),
       bit=st.integers(0, 7))
@settings(max_examples=100, deadline=None)
def test_header_single_bit_flips_are_detected(position, bit):
    """Any bit flip in the covered words (fields + checksum) raises.

    Only the trailing reserved word escapes the CRC; a torn write that
    touches nothing but padding is harmless by construction.
    """
    buf = bytearray(encode_header(KIND_DATA, 0, 12345, 7, 900))
    buf[position] ^= 1 << bit
    with pytest.raises(TornSlabError):
        decode_header(bytes(buf))


def test_header_codec_rejects_out_of_range_fields():
    encode_header(0xFFFF, 0xFFFF, 2 ** 64 - 1, 0xFFFFFFFF, 0xFFFFFFFF)
    for bad in (dict(kind=-1), dict(kind=0x10000), dict(flags=-1),
                dict(seq=2 ** 64), dict(n_records=-1),
                dict(n_bytes=0x1_0000_0000)):
        fields = dict(kind=KIND_DATA, flags=0, seq=1, n_records=0,
                      n_bytes=0)
        fields.update(bad)
        with pytest.raises(ValueError):
            encode_header(**fields)


def test_header_rejects_truncation_and_bad_magic():
    buf = encode_header(KIND_DATA, 0, 3, 1, 50)
    with pytest.raises(TornSlabError):
        decode_header(buf[:HEADER_BYTES - 1])
    with pytest.raises(TornSlabError):
        decode_header(b"\x00" * HEADER_BYTES)


def test_trailer_stamp_detects_torn_writes():
    buf = encode_trailer(7)
    check_trailer(buf, 7)  # no raise
    with pytest.raises(TornSlabError):
        check_trailer(buf, 8)  # right bytes, wrong frame
    corrupt = bytes([buf[0] ^ 1]) + buf[1:]
    with pytest.raises(TornSlabError):
        check_trailer(corrupt, 7)


@given(n_bytes=st.integers(0, 1 << 20))
@settings(max_examples=100, deadline=None)
def test_frame_bytes_alignment_property(n_bytes):
    total = frame_bytes(n_bytes)
    raw = HEADER_BYTES + n_bytes + TRAILER_BYTES
    assert total % FRAME_ALIGN == 0
    assert raw <= total < raw + FRAME_ALIGN


# -- ring FIFO discipline ----------------------------------------------------


@given(sizes=st.lists(st.integers(0, 160), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_ring_is_fifo_across_wraparound_property(sizes):
    """Payloads come out byte-identical, in order, through many wraps.

    A 512-byte ring forces pad-frame wraps every few frames, so the
    property exercises the contiguity guarantee (a popped view is one
    unbroken span) as hard as the steady state ever will.
    """
    ring = SlabRing(capacity=512)
    try:
        payloads = [bytes([i % 251]) * n for i, n in enumerate(sizes)]
        popped = []
        queued = 0
        feed = iter(payloads)
        pending = next(feed, None)
        seq = 0
        while pending is not None or queued:
            if pending is not None and ring.try_push(KIND_DATA, seq,
                                                     pending):
                seq += 1
                queued += 1
                pending = next(feed, None)
                continue
            slab = ring.try_pop()
            assert slab is not None  # full and empty are exclusive
            assert slab.seq == len(popped)
            popped.append(bytes(slab.view))
            ring.pop_done(slab)
            queued -= 1
        assert popped == payloads
        assert ring.try_pop() is None
        assert ring.used_bytes == 0
    finally:
        ring.unlink()


def test_ring_detects_torn_header_and_trailer():
    """Corrupted frames raise TornSlabError instead of decoding."""
    ring = SlabRing(capacity=1024)
    try:
        assert ring.try_push(KIND_DATA, 1, b"x" * 40, n_records=2)
        # Flip one payload... no: flip the trailer stamp -- the torn
        # write a worker dying mid-copy would leave behind.
        trailer_at = CONTROL_BYTES + HEADER_BYTES + 40
        ring._shm.buf[trailer_at] ^= 0xFF
        with pytest.raises(TornSlabError):
            ring.try_pop()
        ring._shm.buf[trailer_at] ^= 0xFF  # restore, then tear the header
        ring._shm.buf[CONTROL_BYTES] ^= 0xFF
        with pytest.raises(TornSlabError):
            ring.try_pop()
    finally:
        ring.unlink()


def test_reserve_commit_abort_discipline():
    ring = SlabRing(capacity=256)
    try:
        with pytest.raises(RuntimeError):
            ring.commit(KIND_DATA, 1)  # commit without a reservation
        view = ring.try_reserve(24)
        assert len(view) == 24
        with pytest.raises(RuntimeError):
            ring.try_reserve(8)  # double reservation
        ring.abort()
        view = ring.try_reserve(24)
        view[:] = b"a" * 24
        with pytest.raises(ValueError):
            ring.commit(KIND_DATA, 1, n_bytes=200)  # size != reservation
        view = ring.try_reserve(24)
        view[:] = b"a" * 24
        ring.commit(KIND_DATA, 1, n_records=3, n_bytes=24)
        slab = ring.try_pop()
        assert (slab.seq, slab.n_records, bytes(slab.view)) == (
            1, 3, b"a" * 24)
        ring.pop_done(slab)
    finally:
        ring.unlink()


def test_capacity_limits_and_oversize_rejection():
    ring = SlabRing(capacity=256)
    try:
        assert ring.fits(64)
        assert not ring.fits(256)  # needs contiguous room after a pad
        with pytest.raises(ValueError):
            ring.try_push(KIND_DATA, 1, b"x" * 256)
        with pytest.raises(ValueError):
            ring.try_reserve(256)
        # A full-but-valid ring reports "not now", not an error.
        while ring.try_push(KIND_DATA, 1, b"x" * 64):
            pass
        assert ring.try_reserve(64) is None
    finally:
        ring.unlink()


def test_attach_sees_the_creators_frames():
    """A second mapping of the same segment pops what the first pushed."""
    ring = SlabRing(capacity=1024)
    try:
        assert ring.try_push(KIND_DATA, 9, b"hello", n_records=1,
                             flags=FLAG_WEIGHTED)
        other = SlabRing(name=ring.name)
        assert other.capacity == ring.capacity
        slab = other.try_pop()
        assert (slab.seq, bytes(slab.view), slab.weighted) == (
            9, b"hello", True)
        other.pop_done(slab)
        assert ring.used_bytes == 0  # head advance is shared state
        other.close()
    finally:
        ring.unlink()


# -- the RecordBatch transport contract --------------------------------------


def test_record_batch_rides_the_ring_bit_exact():
    schema = RecordSchema(32)
    batch = RecordBatch.from_records(schema, keyed_records(64))
    n_bytes = len(batch) * schema.record_size
    ring = SlabRing(capacity=8192)
    try:
        view = ring.try_reserve(n_bytes)
        assert batch.into_shared(view) == n_bytes
        ring.commit(KIND_DATA, 5, n_records=len(batch), n_bytes=n_bytes)
        slab = ring.try_pop()
        assert (slab.seq, slab.n_records, slab.weighted) == (5, 64, False)
        out = RecordBatch.from_shared(schema, slab.view, 64).copy()
        ring.pop_done(slab)
        assert np.array_equal(out.array, batch.array)
    finally:
        ring.unlink()


def test_shared_codec_rejects_short_buffers():
    schema = RecordSchema(32)
    batch = RecordBatch.from_records(schema, keyed_records(4))
    with pytest.raises(ValueError):
        batch.into_shared(bytearray(schema.record_size * 3))
    with pytest.raises(ValueError):
        RecordBatch.from_shared(schema, bytes(schema.record_size * 3), 4)


def test_ingest_pop_rejects_schema_mismatched_frames():
    """The worker never decodes a frame that disagrees with its schema.

    A weighted-flagged frame (or one whose byte count is not
    ``n_records`` whole records) against an unweighted shard schema
    must raise :class:`TornSlabError` instead of shifting every field
    by the 8 weight bytes -- the ingest-direction mirror of the
    supervisor's reply-slab guard.
    """
    from repro.service.worker import _pop_batch_slab

    schema = RecordSchema(32)
    weighted = RecordSchema(32, weighted=True)
    batch = RecordBatch.from_records(weighted, keyed_records(8),
                                     weights=[1.0] * 8)
    n_bytes = len(batch) * weighted.record_size
    ring = SlabRing(capacity=4096)
    try:
        view = ring.try_reserve(n_bytes)
        batch.into_shared(view)
        ring.commit(KIND_DATA, 1, flags=FLAG_WEIGHTED,
                    n_records=len(batch), n_bytes=n_bytes)
        with pytest.raises(TornSlabError, match="schema"):
            _pop_batch_slab(ring, schema, 1, len(batch))
        assert ring.used_bytes == 0  # the bad frame was released

        # Size mismatch alone (right flag, short payload) is caught too.
        view = ring.try_reserve(24)
        view[:] = b"\x00" * 24
        ring.commit(KIND_DATA, 2, n_records=8, n_bytes=24)
        with pytest.raises(TornSlabError, match="schema"):
            _pop_batch_slab(ring, schema, 2, 8)
    finally:
        ring.unlink()


def test_schema_and_batch_pickle_round_trip():
    """The queue fallback path pickles both; they must survive it."""
    schema = RecordSchema(50)
    clone = pickle.loads(pickle.dumps(schema))
    assert clone == schema
    assert hash(clone) == hash(schema)
    batch = RecordBatch.from_records(RecordSchema(32), keyed_records(16))
    out = pickle.loads(pickle.dumps(batch))
    assert out.schema == batch.schema
    assert np.array_equal(out.array, batch.array)
