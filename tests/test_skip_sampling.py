"""Unit tests for Vitter's skip-based reservoir sampling."""

import collections
import math
import random

import pytest

from repro.sampling import ReservoirSample, SkipReservoir, ZSkipper, skip_count_x


def exact_gap_pmf(n: int, seen: int, max_skip: int) -> list[float]:
    """P[skip == s] for the true acceptance-gap distribution."""
    pmf = []
    survive = 1.0
    for s in range(max_skip + 1):
        position = seen + s + 1
        accept = n / position
        pmf.append(survive * accept)
        survive *= 1 - accept
    return pmf


class TestSkipCountX:
    def test_requires_full_reservoir(self):
        with pytest.raises(ValueError):
            skip_count_x(10, 5, random.Random(0))

    def test_matches_exact_distribution(self):
        n, seen, trials = 5, 50, 20000
        rng = random.Random(42)
        counts = collections.Counter(
            skip_count_x(n, seen, rng) for _ in range(trials)
        )
        pmf = exact_gap_pmf(n, seen, 60)
        for s in range(20):
            expected = trials * pmf[s]
            if expected < 20:
                continue
            sigma = math.sqrt(expected)
            assert abs(counts[s] - expected) < 5 * sigma, s

    def test_mean_gap_grows_with_stream_position(self):
        rng = random.Random(1)
        early = [skip_count_x(10, 100, rng) for _ in range(2000)]
        late = [skip_count_x(10, 10000, rng) for _ in range(2000)]
        assert sum(late) / len(late) > 10 * sum(early) / len(early)


class TestZSkipper:
    def test_requires_full_reservoir(self):
        z = ZSkipper(10, random.Random(0))
        with pytest.raises(ValueError):
            z.skip(5)

    def test_agrees_with_x_in_distribution(self):
        """Algorithm Z must sample the same gap law as Algorithm X."""
        n, seen, trials = 8, 2000, 15000
        rng_z = random.Random(7)
        z = ZSkipper(n, rng_z)
        zs = [z.skip(seen) for _ in range(trials)]
        rng_x = random.Random(8)
        xs = [skip_count_x(n, seen, rng_x) for _ in range(trials)]
        mean_z = sum(zs) / trials
        mean_x = sum(xs) / trials
        # Exact mean of the gap is about (seen+1-n)/(n-1) ~ 284.7.
        assert mean_z == pytest.approx(mean_x, rel=0.05)
        # Compare a distribution quantile too, not just the mean.
        zs.sort()
        xs.sort()
        assert zs[trials // 2] == pytest.approx(xs[trials // 2], rel=0.08)

    def test_nonnegative_skips(self):
        z = ZSkipper(3, random.Random(9))
        assert all(z.skip(100) >= 0 for _ in range(1000))


class TestSkipReservoir:
    def test_fills_like_plain_reservoir(self):
        sampler = SkipReservoir(5, random.Random(0))
        for i in range(5):
            sampler.offer(i)
        assert sorted(sampler.contents()) == [0, 1, 2, 3, 4]

    def test_size_stays_at_capacity(self):
        sampler = SkipReservoir(10, random.Random(0))
        for i in range(5000):
            sampler.offer(i)
        assert len(sampler) == 10
        assert sampler.seen == 5000

    def test_distribution_matches_plain_reservoir(self):
        trials, n, stream = 2500, 5, 60
        skip_counts = collections.Counter()
        plain_counts = collections.Counter()
        for t in range(trials):
            skip = SkipReservoir(n, random.Random(t), z_threshold=6.0)
            plain = ReservoirSample(n, random.Random(t + 10 ** 6))
            for i in range(stream):
                skip.offer(i)
                plain.offer(i)
            skip_counts.update(skip.contents())
            plain_counts.update(plain.contents())
        expected = trials * n / stream
        sigma = math.sqrt(trials * (n / stream) * (1 - n / stream))
        for item in range(stream):
            assert abs(skip_counts[item] - expected) < 5 * sigma, item
            assert abs(skip_counts[item] - plain_counts[item]) < 7 * sigma

    def test_pending_skip_zero_while_filling(self):
        sampler = SkipReservoir(5, random.Random(0))
        sampler.offer(0)
        assert sampler.pending_skip() == 0

    def test_skip_ahead_consumes_the_gap(self):
        sampler = SkipReservoir(5, random.Random(3))
        for i in range(200):
            sampler.offer(i)
        gap = sampler.pending_skip()
        sampler.skip_ahead(gap)
        assert sampler.pending_skip() == 0
        # The very next offer must be accepted.
        before = set(sampler.contents())
        sampler.offer(999)
        assert 999 in sampler.contents() or before != set(sampler.contents())

    def test_skip_ahead_past_acceptance_rejected(self):
        sampler = SkipReservoir(5, random.Random(3))
        for i in range(200):
            sampler.offer(i)
        with pytest.raises(ValueError):
            sampler.skip_ahead(sampler.pending_skip() + 1)

    def test_skip_ahead_negative_rejected(self):
        sampler = SkipReservoir(5, random.Random(3))
        for i in range(10):
            sampler.offer(i)
        with pytest.raises(ValueError):
            sampler.skip_ahead(-1)

    def test_algorithm_x_only_mode(self):
        sampler = SkipReservoir(5, random.Random(4), use_z=False)
        for i in range(2000):
            sampler.offer(i)
        assert len(sampler) == 5
        assert sampler._z is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SkipReservoir(0)
