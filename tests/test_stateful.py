"""Stateful property testing of the geometric file.

A hypothesis rule-based state machine drives a geometric file through
arbitrary interleavings of offers, invariant checks, snapshot queries
and checkpoint round-trips, verifying after every step that the
structure's guarantees hold:

* conservation (every ledger's live == slots + tail + stack);
* the sample is always ``min(N, seen)`` distinct records drawn from the
  stream seen so far;
* a checkpoint round-trip in any state is undetectable afterwards.
"""

import io
import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from conftest import TEST_BLOCK, small_disk_params
from repro.core.checkpoint import load_geometric_file, save_geometric_file
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.storage.device import SimulatedBlockDevice
from repro.storage.records import Record


class GeometricFileMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.gf = None
        self.next_key = 0

    @initialize(capacity_exp=st.integers(3, 6), seed=st.integers(0, 999))
    def setup(self, capacity_exp, seed):
        capacity = 2 ** capacity_exp * 10  # 80 .. 640
        buffer_capacity = max(4, capacity // 10)
        config = GeometricFileConfig(
            capacity=capacity, buffer_capacity=buffer_capacity,
            record_size=40, retain_records=True,
            beta_records=max(2, buffer_capacity // 5),
            admission="always",
        )
        blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
        device = SimulatedBlockDevice(blocks, small_disk_params())
        self.gf = GeometricFile(device, config, seed=seed)
        self.config = config
        self.blocks = blocks

    @rule(n=st.integers(1, 400))
    def offer_records(self, n):
        for _ in range(n):
            self.gf.offer(Record(key=self.next_key,
                                 value=float(self.next_key)))
            self.next_key += 1

    @rule()
    def snapshot_is_a_valid_sample(self):
        sample = self.gf.sample()
        keys = [r.key for r in sample]
        assert len(keys) == min(self.gf.capacity, self.gf.seen)
        assert len(set(keys)) == len(keys)
        assert all(0 <= k < self.next_key for k in keys)

    @rule()
    def checkpoint_round_trip(self):
        sink = io.StringIO()
        save_geometric_file(self.gf, sink)
        sink.seek(0)
        device = SimulatedBlockDevice(self.blocks, small_disk_params())
        restored = load_geometric_file(sink, device)
        restored.check_invariants()
        assert restored.seen == self.gf.seen
        assert restored.disk_size == self.gf.disk_size
        # Adopt the restored instance: continuing from it must be
        # indistinguishable, which later rules then exercise.
        self.gf = restored

    @invariant()
    def conservation(self):
        if self.gf is not None:
            self.gf.check_invariants()

    @invariant()
    def never_exceeds_capacity(self):
        if self.gf is not None and not self.gf.in_startup:
            assert self.gf.disk_size == self.gf.capacity


TestGeometricFileStateful = GeometricFileMachine.TestCase
TestGeometricFileStateful.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None,
)
