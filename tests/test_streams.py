"""Unit tests for the synthetic stream generators."""

import statistics

import pytest

from repro.storage.records import Record
from repro.streams import (
    CountingStream,
    DataStream,
    LogNormalStream,
    MixtureStream,
    NormalStream,
    SensorStream,
    TransformedStream,
    UniformStream,
    ZipfStream,
    take,
)


class TestBasics:
    def test_keys_are_sequence_numbers(self):
        records = take(UniformStream(seed=1), 10)
        assert [r.key for r in records] == list(range(10))

    def test_timestamps_advance_by_tick(self):
        records = take(UniformStream(seed=1, tick=0.5), 4)
        assert [r.timestamp for r in records] == [0.0, 0.5, 1.0, 1.5]

    def test_same_seed_same_stream(self):
        a = take(NormalStream(seed=7), 50)
        b = take(NormalStream(seed=7), 50)
        assert a == b

    def test_different_seeds_differ(self):
        a = take(NormalStream(seed=1), 50)
        b = take(NormalStream(seed=2), 50)
        assert a != b

    def test_produced_counter(self):
        stream = UniformStream(seed=0)
        take(stream, 25)
        assert stream.produced == 25

    def test_generators_satisfy_protocol(self):
        assert isinstance(UniformStream(), DataStream)
        assert isinstance(SensorStream(), DataStream)


class TestDistributions:
    def test_uniform_range_and_mean(self):
        values = [r.value for r in take(UniformStream(2.0, 4.0, seed=3),
                                        5000)]
        assert all(2.0 <= v < 4.0 for v in values)
        assert statistics.mean(values) == pytest.approx(3.0, abs=0.05)

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformStream(1.0, 1.0)

    def test_normal_moments(self):
        values = [r.value for r in take(NormalStream(20.0, 2.0, seed=5),
                                        20000)]
        assert statistics.mean(values) == pytest.approx(20.0, abs=0.1)
        assert statistics.stdev(values) == pytest.approx(2.0, abs=0.1)

    def test_lognormal_targets_requested_moments(self):
        stream = LogNormalStream(mean=1000.0, std=2000.0, seed=11)
        values = [r.value for r in take(stream, 200000)]
        assert all(v > 0 for v in values)
        # Heavy tail: the mean converges slowly; allow 10%.
        assert statistics.mean(values) == pytest.approx(1000.0, rel=0.10)

    def test_lognormal_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogNormalStream(mean=-1.0)

    def test_zipf_values_in_range_and_skewed(self):
        values = [r.value for r in take(ZipfStream(100, 1.2, seed=2),
                                        20000)]
        assert all(1 <= v <= 100 for v in values)
        ones = sum(1 for v in values if v == 1)
        tens = sum(1 for v in values if v == 10)
        assert ones > 5 * tens  # rank 1 dominates rank 10

    def test_zipf_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfStream(0)
        with pytest.raises(ValueError):
            ZipfStream(10, exponent=0.0)

    def test_mixture_blends_components(self):
        low = NormalStream(0.0, 0.1, seed=1)
        high = NormalStream(100.0, 0.1, seed=2)
        mix = MixtureStream([(1.0, low), (1.0, high)], seed=3)
        values = [r.value for r in take(mix, 4000)]
        near_low = sum(1 for v in values if v < 50)
        assert 0.4 < near_low / len(values) < 0.6

    def test_mixture_rejects_empty_or_bad_weights(self):
        with pytest.raises(ValueError):
            MixtureStream([])
        with pytest.raises(ValueError):
            MixtureStream([(0.0, NormalStream())])


class TestSensorStream:
    def test_payload_parses(self):
        stream = SensorStream(n_sensors=20, n_regions=4, seed=0)
        record = next(iter(stream))
        sensor, region = SensorStream.parse_payload(record)
        assert 0 <= sensor < 20
        assert region == stream.region_of(sensor)

    def test_timestamps_strictly_increase(self):
        records = take(SensorStream(seed=1), 500)
        times = [r.timestamp for r in records]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_arrival_rate_approximately_honoured(self):
        stream = SensorStream(rate=100.0, seed=4)
        records = take(stream, 5000)
        elapsed = records[-1].timestamp
        assert 5000 / elapsed == pytest.approx(100.0, rel=0.1)

    def test_regional_levels_differ(self):
        stream = SensorStream(n_sensors=200, n_regions=2, noise_std=0.1,
                              seed=9)
        by_region: dict[int, list[float]] = {0: [], 1: []}
        for record in take(stream, 4000):
            _, region = SensorStream.parse_payload(record)
            by_region[region].append(record.value)
        gap = abs(statistics.mean(by_region[0])
                  - statistics.mean(by_region[1]))
        assert gap > 1.0  # baselines are 5 apart, drift/noise is smaller

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SensorStream(n_sensors=0)
        with pytest.raises(ValueError):
            SensorStream(rate=0.0)
        with pytest.raises(ValueError):
            SensorStream(noise_std=-1.0)


class TestAdapters:
    def test_counting_stream_wraps_any_iterable(self):
        base = [Record(key=i) for i in range(5)]
        stream = CountingStream(base)
        assert take(stream, 3) == base[:3]
        assert stream.produced == 3

    def test_take_exhaustion_raises(self):
        with pytest.raises(ValueError):
            take(CountingStream([Record(key=0)]), 5)

    def test_take_negative_raises(self):
        with pytest.raises(ValueError):
            take(CountingStream([]), -1)

    def test_transformed_stream(self):
        base = CountingStream(Record(key=i) for i in range(10))
        doubled = TransformedStream(
            base, lambda r: Record(key=r.key * 2)
        )
        assert [r.key for r in take(doubled, 3)] == [0, 2, 4]
        assert doubled.produced == 3
