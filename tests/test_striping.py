"""Tests for the multi-spindle striped device."""

import pytest

from repro.storage import DiskParameters, StripedBlockDevice
from repro.storage.device import BlockDevice, read_discard, write_zeros


def make(n_disks=5, n_blocks=10_000, stripe=1):
    return StripedBlockDevice(n_blocks, n_disks,
                              DiskParameters(block_size=1024),
                              stripe_blocks=stripe)


class TestBasics:
    def test_satisfies_protocol(self):
        assert isinstance(make(), BlockDevice)

    def test_validation(self):
        with pytest.raises(ValueError):
            StripedBlockDevice(0)
        with pytest.raises(ValueError):
            StripedBlockDevice(10, n_disks=0)
        with pytest.raises(ValueError):
            StripedBlockDevice(10, stripe_blocks=0)

    def test_range_checks(self):
        dev = make(n_blocks=10)
        with pytest.raises(ValueError):
            dev.read_blocks(9, 2)

    def test_reads_return_zeros(self):
        dev = make()
        assert dev.read_blocks(0, 2) == b"\x00" * 2048

    def test_round_robin_placement(self):
        dev = make(n_disks=3)
        for block in range(6):
            dev.write_blocks(block, b"\x00" * 1024)
        # blocks 0..5 land on disks 0,1,2,0,1,2
        for disk in dev.disks:
            assert disk.stats.blocks_written == 2


class TestParallelism:
    def test_sequential_transfer_speeds_up_m_times(self):
        single = make(n_disks=1, n_blocks=20_000)
        five = make(n_disks=5, n_blocks=20_000)
        write_zeros(single, 0, 20_000)
        write_zeros(five, 0, 20_000)
        # Idealised array: the volume clock is the busiest spindle.
        # One fixed seek per spindle blurs the exact 5x at this size.
        assert five.clock == pytest.approx(single.clock / 5, rel=0.12)

    def test_random_access_does_not_speed_up(self):
        """A single random block access still pays one full seek."""
        dev = make(n_disks=5)
        dev.read_blocks(4321, 1)
        assert dev.clock >= 0.010

    def test_combined_stats_sum_spindles(self):
        dev = make(n_disks=4)
        write_zeros(dev, 0, 4000)
        read_discard(dev, 0, 4000)
        stats = dev.combined_stats()
        assert stats.blocks_written == 4000
        assert stats.blocks_read == 4000

    def test_intra_spindle_contiguity(self):
        """Alternating stripes on one spindle stay sequential there."""
        dev = make(n_disks=2, n_blocks=1000)
        write_zeros(dev, 0, 1000)  # one big sequential volume write
        for disk in dev.disks:
            assert disk.stats.seeks == 1  # never re-seeks mid-stream


class TestPaperArithmetic:
    def test_250_records_per_second_on_five_spindles(self):
        """Introduction: a terabyte on 5 disks gives ~500 head
        movements/second, so the virtual-memory approach samples only
        ~250 records/second (2 random I/Os each)."""
        dev = make(n_disks=5, n_blocks=100_000)
        import random
        rng = random.Random(0)
        n_records = 2000
        for _ in range(n_records):
            block = rng.randrange(100_000)
            dev.read_blocks(block, 1)     # read the victim block
            dev.write_blocks(block, b"\x00" * 1024)  # write it back
        rate = n_records / dev.clock
        assert rate == pytest.approx(250, rel=0.15)
