"""Unit tests for the per-subsample ledger (paper Sections 4.3-4.5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subsample import SubsampleLedger
from repro.storage.records import Record


def make_ledger(sizes=(40, 30, 20), tail=10, with_records=False,
                stack_capacity=None):
    live = sum(sizes) + tail
    records = ([Record(key=i) for i in range(live)]
               if with_records else None)
    return SubsampleLedger(0, list(sizes), 0, tail, records,
                           stack_capacity=stack_capacity)


class TestConstruction:
    def test_live_is_slots_plus_tail(self):
        ledger = make_ledger((40, 30, 20), tail=10)
        assert ledger.live == 100
        ledger.check_invariant()

    def test_record_count_must_match(self):
        with pytest.raises(ValueError):
            SubsampleLedger(0, [10], 0, 0, [Record(key=1)])

    def test_rejects_nonpositive_segments(self):
        with pytest.raises(ValueError):
            SubsampleLedger(0, [10, 0], 0, 5)

    def test_rejects_negative_tail(self):
        with pytest.raises(ValueError):
            SubsampleLedger(0, [10], 0, -1)

    def test_largest_segment(self):
        ledger = make_ledger((40, 30, 20))
        assert ledger.largest_segment == 40
        assert make_ledger((), tail=5).largest_segment == 0


class TestEvictAndRelease:
    def test_release_matches_evictions_exactly(self):
        """When k == segment size, the stack is untouched."""
        ledger = make_ledger((40, 30), tail=10)
        ledger.evict(40)
        ledger.release_segment()
        assert ledger.stack_balance == 0
        assert ledger.live == 40
        ledger.check_invariant()

    def test_case_1_surplus_pushes(self):
        """Fewer evictions than the released segment (paper Case 1)."""
        ledger = make_ledger((40, 30), tail=10)
        ledger.evict(35)
        released = ledger.release_segment()
        assert released == 40
        assert ledger.stack_balance == 5
        event = ledger.reconcile_stack()
        assert event.pushed == 5 and event.popped == 0
        ledger.check_invariant()

    def test_case_2_deficit_pops(self):
        """More evictions than the segment; pops from prior surplus."""
        ledger = make_ledger((40, 30, 20), tail=10)
        ledger.evict(30)
        ledger.release_segment()   # balance +10
        ledger.reconcile_stack()
        ledger.evict(35)
        ledger.release_segment()   # releases 30, balance 10-35+30 = +5
        event = ledger.reconcile_stack()
        assert event.popped == 5
        assert ledger.stack_balance == 5
        ledger.check_invariant()

    def test_ghost_debt_carried_and_repaid(self):
        """Evictions beyond the stack go into (negative) ghost debt."""
        ledger = make_ledger((40, 30), tail=10)
        ledger.evict(50)
        ledger.release_segment()
        assert ledger.stack_balance == -10
        ledger.check_invariant()
        # The next release repays the debt.
        ledger.evict(10)
        ledger.release_segment()
        assert ledger.stack_balance == 10
        ledger.check_invariant()

    def test_debt_settled_from_tail_after_last_segment(self):
        ledger = make_ledger((40,), tail=10)
        ledger.evict(45)
        ledger.release_segment()
        # 45 evicted, 40 physical released: 5 debited from the tail.
        assert ledger.stack_balance == 0
        assert ledger.tail_size == 5
        assert ledger.live == 5
        ledger.check_invariant()

    def test_release_without_segments_raises(self):
        ledger = make_ledger((), tail=5)
        with pytest.raises(ValueError):
            ledger.release_segment()

    def test_evict_more_than_live_raises(self):
        ledger = make_ledger((10,), tail=0)
        with pytest.raises(ValueError):
            ledger.evict(11)

    def test_evict_negative_raises(self):
        with pytest.raises(ValueError):
            make_ledger().evict(-1)

    def test_level_advances_per_release(self):
        ledger = make_ledger((40, 30, 20))
        assert ledger.current_level == 0
        ledger.evict(40)
        ledger.release_segment()
        assert ledger.current_level == 1
        assert ledger.n_disk_segments == 2


class TestTailOnlyPhase:
    def test_tail_evictions_drain_stack_first(self):
        ledger = make_ledger((40,), tail=10)
        ledger.evict(30)
        ledger.release_segment()    # balance +10, tail 10, live 20
        assert ledger.stack_balance == 10
        ledger.evict(15)
        assert ledger.stack_balance == 0
        assert ledger.tail_size == 5
        ledger.check_invariant()

    def test_death(self):
        ledger = make_ledger((), tail=5)
        ledger.evict(5)
        assert ledger.is_dead
        ledger.check_invariant()

    def test_fold_stack_into_tail(self):
        ledger = make_ledger((40,), tail=10)
        ledger.evict(30)
        ledger.release_segment()
        folded = ledger.fold_stack_into_tail()
        assert folded == 10
        assert ledger.stack_balance == 0
        assert ledger.tail_size == 20
        ledger.check_invariant()

    def test_fold_with_segments_remaining_raises(self):
        ledger = make_ledger((40, 30))
        with pytest.raises(ValueError):
            ledger.fold_stack_into_tail()


class TestRecordTracking:
    def test_eviction_trims_records(self):
        ledger = make_ledger((40, 30), tail=10, with_records=True)
        ledger.evict(25)
        assert len(ledger.records) == 55
        ledger.check_invariant()

    def test_weights_trim_in_lockstep(self):
        ledger = make_ledger((10,), tail=0, with_records=True)
        ledger.weights = [float(i) for i in range(10)]
        ledger.evict(4)
        assert len(ledger.weights) == len(ledger.records) == 6
        assert ledger.weights == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestOverflowDetection:
    def test_overflow_flag_set(self):
        ledger = make_ledger((40, 30), tail=10, stack_capacity=5)
        ledger.evict(20)
        ledger.release_segment()  # balance +20 > capacity 5
        assert ledger.overflowed
        assert ledger.max_stack_balance == 20

    def test_no_overflow_within_capacity(self):
        ledger = make_ledger((40, 30), tail=10, stack_capacity=50)
        ledger.evict(20)
        ledger.release_segment()
        assert not ledger.overflowed


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_invariant_under_random_operation_sequences(data):
    """Property: any legal evict/release/reconcile sequence keeps
    live == slots + tail + stack balance, and live never goes negative."""
    n_segments = data.draw(st.integers(1, 6))
    sizes = [data.draw(st.integers(1, 50)) for _ in range(n_segments)]
    tail = data.draw(st.integers(0, 30))
    ledger = SubsampleLedger(0, sizes, 0, tail)
    rng = random.Random(data.draw(st.integers(0, 10 ** 6)))
    for _ in range(data.draw(st.integers(1, 40))):
        action = rng.choice(["evict", "release", "reconcile"])
        if action == "evict" and ledger.live > 0:
            k = rng.randint(0, ledger.live)
            # Ghost debt can only be repaid while segments remain; keep
            # the sequence legal the way the file does: a tail-only
            # subsample is never evicted below zero.
            ledger.evict(k)
        elif action == "release" and ledger.segment_sizes:
            ledger.release_segment()
        elif action == "reconcile":
            event = ledger.reconcile_stack()
            assert event.pushed >= 0 and event.popped >= 0
        ledger.check_invariant()
        assert ledger.live >= 0
