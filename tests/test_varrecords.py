"""Tests for the variable-size record codec (Section 10 groundwork)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import MemoryBlockDevice, VariableRecordCodec
from repro.storage.records import Record


def recs(payloads):
    return [Record(key=i, value=float(i), timestamp=float(i),
                   payload=p) for i, p in enumerate(payloads)]


class TestEncodeDecode:
    def test_round_trip_mixed_sizes(self):
        codec = VariableRecordCodec()
        records = recs([b"", b"x", b"hello world", b"a" * 1000])
        run, overflow = codec.pack(records, budget_bytes=10_000)
        assert overflow == []
        assert codec.decode_run(run) == records

    def test_encoded_size_matches(self):
        codec = VariableRecordCodec()
        record = Record(key=1, payload=b"abc")
        assert len(codec.encode(record)) == codec.encoded_size(record)

    def test_oversized_record_rejected(self):
        codec = VariableRecordCodec(max_record_bytes=64)
        with pytest.raises(ValueError):
            codec.encode(Record(key=1, payload=b"z" * 200))

    def test_truncated_run_rejected(self):
        codec = VariableRecordCodec()
        run, _ = codec.pack(recs([b"hello"]), 1000)
        with pytest.raises(ValueError):
            codec.decode_run(run[:-8])


class TestPacking:
    def test_budget_spills_in_order(self):
        codec = VariableRecordCodec()
        records = recs([b"a" * 40] * 10)
        per = codec.encoded_size(records[0])
        budget = per * 4 + 8  # room for 4 records + terminator
        run, overflow = codec.pack(records, budget)
        packed = codec.decode_run(run)
        assert packed == records[:4]
        assert overflow == records[4:]
        assert len(run) <= budget

    def test_first_fit_does_not_reorder(self):
        """A small later record must not jump a big earlier one."""
        codec = VariableRecordCodec()
        records = recs([b"a" * 10, b"b" * 500, b"c" * 10])
        budget = codec.encoded_size(records[0]) \
            + codec.encoded_size(records[2]) + 8
        run, overflow = codec.pack(records, budget)
        assert codec.decode_run(run) == records[:1]
        assert overflow == records[1:]

    def test_tiny_budget_rejected(self):
        codec = VariableRecordCodec()
        with pytest.raises(ValueError):
            codec.pack([], 2)

    def test_total_encoded_size(self):
        codec = VariableRecordCodec()
        records = recs([b"xy", b"z" * 7])
        run, overflow = codec.pack(records,
                                   codec.total_encoded_size(records))
        assert overflow == []


class TestBlockRoundTrip:
    def test_through_a_device_with_padding(self):
        codec = VariableRecordCodec()
        device = MemoryBlockDevice(16, block_size=128)
        records = recs([b"p" * n for n in (0, 5, 50, 111)])
        run, _ = codec.pack(records, budget_bytes=16 * 128)
        padded = codec.pad_to_blocks(run, device.block_size)
        device.write_blocks(0, padded)
        read = device.read_blocks(0, len(padded) // device.block_size)
        assert codec.decode_run(read) == records

    def test_pad_validation(self):
        codec = VariableRecordCodec()
        with pytest.raises(ValueError):
            codec.pad_to_blocks(b"abc", 0)


@given(payloads=st.lists(st.binary(max_size=200), max_size=30),
       budget=st.integers(8, 4000))
@settings(max_examples=200, deadline=None)
def test_pack_decode_property(payloads, budget):
    """pack + decode_run is the identity on the packed prefix, the
    overflow is exactly the unpacked suffix, and budgets are honoured."""
    codec = VariableRecordCodec()
    records = recs(payloads)
    run, overflow = codec.pack(records, budget)
    assert len(run) <= budget
    packed = codec.decode_run(run)
    assert packed + overflow == records
