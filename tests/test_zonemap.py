"""Tests for zone-map indexing over a geometric file (Section 10)."""

import pytest

from conftest import make_geometric_file
from repro.core.zonemap import ZoneMapIndex
from repro.storage.records import Record


def feed(gf, n, start=0):
    for i in range(start, start + n):
        gf.offer(Record(key=i, value=float(i % 97), timestamp=float(i)))


class TestCorrectness:
    def test_query_matches_full_scan(self):
        gf = make_geometric_file(capacity=800, buffer_capacity=40)
        feed(gf, 4000)
        index = ZoneMapIndex(gf, field="timestamp")
        got = sorted(r.key for r in index.query(1000.0, 2000.0))
        want = sorted(r.key for ledger in gf.subsamples
                      for r in (ledger.records or [])
                      if 1000.0 <= r.timestamp <= 2000.0)
        assert got == want

    def test_value_field(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50)
        feed(gf, 2000)
        index = ZoneMapIndex(gf, field="value")
        got = list(index.query(10.0, 20.0))
        assert got
        assert all(10.0 <= r.value <= 20.0 for r in got)

    def test_custom_extractor(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        feed(gf, 1000)
        index = ZoneMapIndex(gf, extractor=lambda r: float(r.key % 10))
        got = list(index.query(3.0, 3.0))
        assert got
        assert all(r.key % 10 == 3 for r in got)

    def test_buffer_pending_records_included(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                 admission="always")
        feed(gf, 315)  # 15 records pending in the buffer
        index = ZoneMapIndex(gf, field="timestamp")
        got = {r.key for r in index.query(300.0, 314.0)}
        # Every pending key in range must be visible.
        pending = {r.key for r in gf.buffer if 300 <= r.key <= 314}
        assert pending <= got

    def test_empty_range(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        feed(gf, 1000)
        index = ZoneMapIndex(gf, field="timestamp")
        assert list(index.query(10_000.0, 20_000.0)) == []

    def test_reversed_range_rejected(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        feed(gf, 300)
        index = ZoneMapIndex(gf)
        with pytest.raises(ValueError):
            list(index.query(5.0, 1.0))


class TestPruning:
    def test_time_range_queries_prune_subsamples(self):
        """Timestamp envelopes track creation order, so narrow recent
        windows skip most subsamples -- the future-work payoff."""
        gf = make_geometric_file(capacity=1000, buffer_capacity=50,
                                 admission="always")
        feed(gf, 6000)
        index = ZoneMapIndex(gf, field="timestamp")
        list(index.query(5900.0, 6000.0))
        stats = index.last_stats
        assert stats.subsamples_total > 10
        assert stats.pruned_fraction > 0.5

    def test_full_range_scans_everything(self):
        gf = make_geometric_file(capacity=500, buffer_capacity=50)
        feed(gf, 1000)
        index = ZoneMapIndex(gf, field="timestamp")
        results = list(index.query(0.0, 10_000.0))
        # Disk residents plus any records still pending in the buffer
        # (the zone map does not apply deferred evictions).
        assert 500 <= len(results) <= 500 + gf.buffer.count
        assert index.last_stats.pruned_fraction == 0.0
        assert index.last_stats.records_matched == len(results)

    def test_stats_track_scanned_and_matched(self):
        gf = make_geometric_file(capacity=400, buffer_capacity=40)
        feed(gf, 2000)
        index = ZoneMapIndex(gf, field="timestamp")
        results = list(index.query(0.0, 500.0))
        stats = index.last_stats
        assert stats.records_matched == len(results)
        assert stats.records_scanned >= stats.records_matched


class TestMaintenance:
    def test_refresh_picks_up_new_flushes(self):
        gf = make_geometric_file(capacity=400, buffer_capacity=40,
                                 admission="always")
        feed(gf, 400)
        index = ZoneMapIndex(gf, field="timestamp")
        feed(gf, 1000, start=400)
        got = {r.key for r in index.query(1300.0, 1399.0)}
        want = {r.key for ledger in gf.subsamples
                for r in (ledger.records or [])
                if 1300 <= r.key <= 1399}
        assert got >= want

    def test_dead_subsample_envelopes_dropped(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                 admission="always")
        feed(gf, 3000)
        index = ZoneMapIndex(gf)
        index.refresh()
        alive = {ledger.ident for ledger in gf.subsamples}
        assert set(index._envelopes) <= alive

    def test_requires_record_retention(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30,
                                 retain_records=False)
        with pytest.raises(ValueError):
            ZoneMapIndex(gf)

    def test_unknown_field_rejected(self):
        gf = make_geometric_file(capacity=300, buffer_capacity=30)
        with pytest.raises(ValueError):
            ZoneMapIndex(gf, field="nope")
